package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/resp"
	"repro/pkg/plru"
)

// infoCounter pulls one integer field out of an INFO reply.
func infoCounter(t *testing.T, c *client, field string) int64 {
	t.Helper()
	rep := c.do("INFO")
	if rep.Kind != resp.KindBulk {
		t.Fatalf("INFO => %+v", rep)
	}
	for _, line := range strings.Split(string(rep.Str), "\n") {
		if v, ok := strings.CutPrefix(strings.TrimSpace(line), field+":"); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("INFO %s:%q: %v", field, v, err)
			}
			return n
		}
	}
	t.Fatalf("INFO has no field %q:\n%s", field, rep.Str)
	return 0
}

// dialRaw opens a connection without registering a cleanup-time Fatal,
// for tests that expect the server to close it.
func dialRaw(t *testing.T, s *Server) (net.Conn, *resp.Reader, *resp.Writer) {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, resp.NewReader(conn), resp.NewWriter(conn)
}

func TestMaxConnsRejection(t *testing.T) {
	s := startServer(t, Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU, MaxConns: 2})

	c1 := dial(t, s)
	c2 := dial(t, s)
	c1.expectSimple("PONG", "PING")
	c2.expectSimple("PONG", "PING")

	// Third connect: refused with the redis-compatible error, then closed.
	conn, r, _ := dialRaw(t, s)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	rep, err := r.ReadReply()
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if !rep.IsErr() || string(rep.Str) != "ERR max number of clients reached" {
		t.Fatalf("over-cap connect => %+v, want -ERR max number of clients reached", rep)
	}
	if _, err := r.ReadReply(); err == nil {
		t.Fatal("rejected connection left open")
	}
	if got := infoCounter(t, c1, "rejected_connections"); got != 1 {
		t.Fatalf("rejected_connections = %d, want 1", got)
	}

	// The admitted connections were untouched.
	c1.expectSimple("OK", "SET", "k", "v")
	c2.expectBulk("v", "GET", "k")

	// Closing one frees its slot; a retry gets in. The release happens
	// after the server notices the close, so poll.
	c2.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		r, w := resp.NewReader(conn), resp.NewWriter(conn)
		w.WriteCommandString("PING")
		if err := w.Flush(); err == nil {
			if rep, err := r.ReadReply(); err == nil && rep.Kind == resp.KindSimple && string(rep.Str) == "PONG" {
				conn.Close()
				break
			}
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing an admitted connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMaxConnsPerTenant(t *testing.T) {
	s := startServer(t, Config{
		Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU,
		MaxConnsPerTenant: 1,
		Tenants: []TenantConfig{
			{Name: "gold", Password: "g", Ways: 2},
			{Name: "lead", Password: "l", Ways: 2},
		},
	})

	c1 := dial(t, s)
	c1.expectSimple("OK", "AUTH", "g")

	// Second connection for the same tenant: refused at AUTH time and
	// the connection closes; the cap is per tenant, not global.
	conn, r, w := dialRaw(t, s)
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	w.WriteCommandString("AUTH", "g")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := r.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IsErr() || !strings.HasPrefix(string(rep.Str), "ERR max number of clients") {
		t.Fatalf("over-cap AUTH => %+v, want max-clients error", rep)
	}
	if _, err := r.ReadReply(); err == nil {
		t.Fatal("over-cap tenant connection left open")
	}

	// A different tenant still gets in.
	c2 := dial(t, s)
	c2.expectSimple("OK", "AUTH", "l")
	c2.expectSimple("PONG", "PING")

	// Re-AUTH moves the binding: c2 switching to gold must be refused
	// (gold is full) and the connection ends.
	c2.expectErrPrefix("ERR max number of clients", "AUTH", "g")

	// c1's slot frees when it closes; gold admits again after the
	// server processes the close.
	c1.conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		r, w := resp.NewReader(conn), resp.NewWriter(conn)
		w.WriteCommandString("AUTH", "g")
		if err := w.Flush(); err == nil {
			if rep, err := r.ReadReply(); err == nil && rep.Kind == resp.KindSimple {
				conn.Close()
				break
			}
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("tenant slot never freed after close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRateLimitBusy(t *testing.T) {
	// 1 op/s with the 32-op burst floor: the 40th GET in a burst must
	// be throttled with -BUSY, and INFO/CONFIG stay exempt so the
	// server remains observable under overload.
	s := startServer(t, Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU, RateLimitOps: 1})
	c := dial(t, s)

	busy := 0
	for i := 0; i < 40; i++ {
		rep := c.do("GET", "k")
		if rep.IsErr() {
			if !strings.HasPrefix(string(rep.Str), "BUSY") {
				t.Fatalf("throttled reply = %+v, want -BUSY", rep)
			}
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("40 instant GETs at 1 op/s (burst 32) never hit -BUSY")
	}
	if got := infoCounter(t, c, "rate_limited_ops"); got < int64(busy) {
		t.Fatalf("rate_limited_ops = %d, want >= %d", got, busy)
	}
	// The connection survives throttling — -BUSY is backpressure, not
	// eviction.
	if rep := c.do("INFO"); rep.Kind != resp.KindBulk {
		t.Fatalf("INFO throttled: %+v", rep)
	}
}

func TestRateLimitBytes(t *testing.T) {
	// Tiny byte budget (floor 64 KiB burst): pushing >64KiB of SET
	// payload instantly must throttle, ops alone would not.
	s := startServer(t, Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU, RateLimitBytes: 1})
	c := dial(t, s)

	val := strings.Repeat("x", 8<<10)
	busy := 0
	for i := 0; i < 16; i++ { // 16 × 8 KiB = 128 KiB >> 64 KiB burst
		rep := c.do("SET", fmt.Sprintf("k%d", i), val)
		if rep.IsErr() && strings.HasPrefix(string(rep.Str), "BUSY") {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("128 KiB of instant SET payload at 1 byte/s never hit -BUSY")
	}
}

func TestSlowClientEviction(t *testing.T) {
	s := startServer(t, Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU, ReadTimeout: 100 * time.Millisecond})

	c := dial(t, s)
	c.expectSimple("PONG", "PING")

	// Go idle past the deadline: the server evicts us.
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadReply(); err == nil {
		t.Fatal("idle connection not evicted")
	}

	// The eviction is counted, and fresh clients are unaffected.
	c2 := dial(t, s)
	if got := infoCounter(t, c2, "slow_client_evictions"); got < 1 {
		t.Fatalf("slow_client_evictions = %d, want >= 1", got)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := startServer(t, Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU})

	c := dial(t, s)
	c.expectSimple("OK", "SET", "k", "v")

	// DEBUG PANIC kills only its own connection: best-effort error
	// reply, then close.
	pc := dial(t, s)
	pc.conn.SetDeadline(time.Now().Add(5 * time.Second))
	pc.w.WriteCommandString("DEBUG", "PANIC")
	if err := pc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if rep, err := pc.r.ReadReply(); err == nil {
		if !rep.IsErr() || string(rep.Str) != "ERR internal error" {
			t.Fatalf("post-panic reply = %+v, want -ERR internal error", rep)
		}
	}
	if _, err := pc.r.ReadReply(); err == nil {
		t.Fatal("panicked connection left open")
	}

	// The server is still serving, data intact, panic counted.
	c.expectBulk("v", "GET", "k")
	if got := infoCounter(t, c, "panics_recovered"); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	c2 := dial(t, s)
	c2.expectSimple("PONG", "PING")
}

func TestDebugSleep(t *testing.T) {
	s := startServer(t, Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU})
	c := dial(t, s)

	start := time.Now()
	c.expectSimple("OK", "DEBUG", "SLEEP", "0.05")
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("DEBUG SLEEP 0.05 returned in %v", d)
	}
	c.expectErrPrefix("ERR", "DEBUG", "SLEEP", "-1")
	c.expectErrPrefix("ERR", "DEBUG", "WAT")
}

// flakyListener fails its first n Accepts with a transient error, then
// delegates. It proves the accept loop retries instead of dying.
type flakyListener struct {
	net.Listener
	failures int
}

var errFlaky = errors.New("transient accept failure")

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures > 0 {
		l.failures--
		return nil, errFlaky
	}
	return l.Listener.Accept()
}

func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	s, err := New(Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const failures = 3
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(&flakyListener{Listener: ln, failures: failures}) }()
	for deadline := time.Now().Add(5 * time.Second); s.Addr() == nil; {
		if time.Now().After(deadline) {
			t.Fatal("Serve never registered its listener")
		}
		time.Sleep(time.Millisecond)
	}

	// Despite the injected failures (and their backoff) the loop must
	// come back and accept real connections.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	r, w := resp.NewReader(conn), resp.NewWriter(conn)
	w.WriteCommandString("PING")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := r.ReadReply()
	if err != nil || rep.Kind != resp.KindSimple || string(rep.Str) != "PONG" {
		t.Fatalf("PING through flaky accepts: %+v, %v", rep, err)
	}
	w.WriteCommandString("INFO")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err = r.ReadReply()
	if err != nil || !strings.Contains(string(rep.Str), fmt.Sprintf("accept_errors:%d", failures)) {
		t.Fatalf("INFO accept_errors: %+v, %v", rep, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
}

func TestInfoServerFields(t *testing.T) {
	s := startServer(t, Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU})
	c := dial(t, s)
	rep := c.do("INFO")
	for _, field := range []string{
		"uptime_seconds:", "connected_clients:", "rejected_connections:",
		"rate_limited_ops:", "slow_client_evictions:", "panics_recovered:",
		"accept_errors:",
	} {
		if !strings.Contains(string(rep.Str), field) {
			t.Fatalf("INFO missing %q:\n%s", field, rep.Str)
		}
	}
	if got := infoCounter(t, c, "connected_clients"); got != 1 {
		t.Fatalf("connected_clients = %d, want 1", got)
	}
}
