package server

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/resp"
	"repro/pkg/plru"
)

// startServer boots a server on a random port and returns it with a
// cleanup that drains it.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	// Wait until the Serve goroutine has registered the listener so a
	// Shutdown in cleanup can't beat it to the draining flag.
	for deadline := time.Now().Add(5 * time.Second); s.Addr() == nil; {
		if time.Now().After(deadline) {
			t.Fatal("Serve never registered its listener")
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	})
	return s
}

// client is a test RESP client over one TCP connection.
type client struct {
	t    *testing.T
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func dial(t *testing.T, s *Server) *client {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{t: t, conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}
}

// do sends one command and reads one reply.
func (c *client) do(args ...string) resp.Reply {
	c.t.Helper()
	c.w.WriteCommandString(args...)
	if err := c.w.Flush(); err != nil {
		c.t.Fatal(err)
	}
	rep, err := c.r.ReadReply()
	if err != nil {
		c.t.Fatalf("reading reply to %v: %v", args, err)
	}
	return rep
}

func (c *client) expectSimple(want string, args ...string) {
	c.t.Helper()
	rep := c.do(args...)
	if rep.Kind != resp.KindSimple || string(rep.Str) != want {
		c.t.Fatalf("%v => %+v, want +%s", args, rep, want)
	}
}

func (c *client) expectBulk(want string, args ...string) {
	c.t.Helper()
	rep := c.do(args...)
	if rep.Kind != resp.KindBulk || rep.Null || string(rep.Str) != want {
		c.t.Fatalf("%v => %+v, want bulk %q", args, rep, want)
	}
}

func (c *client) expectNull(args ...string) {
	c.t.Helper()
	rep := c.do(args...)
	if !rep.Null {
		c.t.Fatalf("%v => %+v, want null", args, rep)
	}
}

func (c *client) expectInt(want int64, args ...string) {
	c.t.Helper()
	rep := c.do(args...)
	if rep.Kind != resp.KindInt || rep.Int != want {
		c.t.Fatalf("%v => %+v, want :%d", args, rep, want)
	}
}

func (c *client) expectErrPrefix(prefix string, args ...string) {
	c.t.Helper()
	rep := c.do(args...)
	if !rep.IsErr() || !strings.HasPrefix(string(rep.Str), prefix) {
		c.t.Fatalf("%v => %+v, want error with prefix %q", args, rep, prefix)
	}
}

func TestServerBasicCommands(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Sets: 64, Ways: 8, Policy: plru.LRU})
	c := dial(t, s)

	c.expectSimple("PONG", "PING")
	c.expectBulk("hello", "PING", "hello")
	c.expectNull("GET", "absent")
	c.expectSimple("OK", "SET", "k1", "v1")
	c.expectBulk("v1", "GET", "k1")
	c.expectSimple("OK", "set", "k1", "v2") // commands are case-insensitive
	c.expectBulk("v2", "GET", "k1")
	c.expectInt(1, "EXISTS", "k1")
	c.expectInt(0, "EXISTS", "nope")
	c.expectInt(-1, "TTL", "k1") // resident, no deadline
	c.expectInt(-2, "TTL", "nope")
	c.expectInt(1, "DEL", "k1", "nope")
	c.expectNull("GET", "k1")

	c.expectSimple("OK", "MSET", "a", "1", "b", "2", "c", "3")
	rep := c.do("MGET", "a", "missing", "c")
	if rep.Kind != resp.KindArray || len(rep.Array) != 3 {
		t.Fatalf("MGET => %+v", rep)
	}
	if string(rep.Array[0].Str) != "1" || !rep.Array[1].Null || string(rep.Array[2].Str) != "3" {
		t.Fatalf("MGET elements: %+v", rep.Array)
	}

	c.expectErrPrefix("ERR unknown command", "BOGUS")
	c.expectErrPrefix("ERR wrong number of arguments", "GET")
	c.expectErrPrefix("ERR wrong number of arguments", "MSET", "a", "1", "b")
	c.expectErrPrefix("ERR syntax error", "SET", "k", "v", "WAT")

	info := c.do("INFO")
	if info.Kind != resp.KindBulk {
		t.Fatalf("INFO => %+v", info)
	}
	text := string(info.Str)
	for _, want := range []string{"# Server", "# Cache", "# Tenants", "policy:LRU", "ways:8", "tenant0:name=default"} {
		if !strings.Contains(text, want) {
			t.Fatalf("INFO missing %q:\n%s", want, text)
		}
	}

	c.expectSimple("OK", "QUIT")
	if _, err := c.r.ReadReply(); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

func TestServerTTLCommands(t *testing.T) {
	s := startServer(t, Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU})
	c := dial(t, s)

	c.expectSimple("OK", "SET", "k", "v", "EX", "100")
	rep := c.do("TTL", "k")
	if rep.Int < 99 || rep.Int > 100 {
		t.Fatalf("TTL after EX 100 = %d", rep.Int)
	}
	rep = c.do("PTTL", "k")
	if rep.Int < 99_000 || rep.Int > 100_000 {
		t.Fatalf("PTTL after EX 100 = %d", rep.Int)
	}

	c.expectSimple("OK", "SET", "gone", "v", "PX", "50")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rep := c.do("GET", "gone"); rep.Null {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("PX 50 entry never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.expectInt(-2, "TTL", "gone")

	c.expectErrPrefix("ERR invalid expire time", "SET", "k", "v", "EX", "0")
	c.expectErrPrefix("ERR invalid expire time", "SET", "k", "v", "PX", "-5")
	c.expectErrPrefix("ERR syntax error", "SET", "k", "v", "EX", "10", "PX", "10")
}

// TestServerPipelining sends a whole burst in one write — including a
// malformed frame mid-burst — and checks every reply comes back in
// order on a connection that stays usable.
func TestServerPipelining(t *testing.T) {
	s := startServer(t, Config{
		Shards: 1, Sets: 16, Ways: 4, Policy: plru.BT,
		Limits: resp.Limits{MaxBulkLen: 32},
	})
	c := dial(t, s)

	batch := "*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\n1\r\n" +
		"*2\r\n$3\r\nGET\r\n$1\r\na\r\n" +
		"*2\r\n$3\r\nGET\r\n$100\r\n" + strings.Repeat("x", 100) + "\r\n" + // over MaxBulkLen
		"*2\r\n$3\r\nGET\r\n$1\r\na\r\n" +
		"PING\r\n"
	if _, err := c.conn.Write([]byte(batch)); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.r.ReadReply(); err != nil || string(rep.Str) != "OK" {
		t.Fatalf("reply 1: %+v %v", rep, err)
	}
	if rep, err := c.r.ReadReply(); err != nil || string(rep.Str) != "1" {
		t.Fatalf("reply 2: %+v %v", rep, err)
	}
	if rep, err := c.r.ReadReply(); err != nil || !rep.IsErr() || !strings.Contains(string(rep.Str), "exceeds limit") {
		t.Fatalf("reply 3 (oversized frame): %+v %v", rep, err)
	}
	if rep, err := c.r.ReadReply(); err != nil || string(rep.Str) != "1" {
		t.Fatalf("reply 4 (conn must survive the bad frame): %+v %v", rep, err)
	}
	if rep, err := c.r.ReadReply(); err != nil || string(rep.Str) != "PONG" {
		t.Fatalf("reply 5: %+v %v", rep, err)
	}
}

func TestServerAuthTenants(t *testing.T) {
	s := startServer(t, Config{
		Shards: 1, Sets: 64, Ways: 8, Policy: plru.LRU,
		Tenants: []TenantConfig{
			{Name: "gold", Password: "au", Ways: 6, Budget: 1 << 20},
			{Name: "lead", Password: "pb", Ways: 2},
		},
	})

	c := dial(t, s)
	c.expectErrPrefix("NOAUTH", "GET", "k")
	c.expectSimple("PONG", "PING") // PING allowed pre-auth
	c.expectErrPrefix("WRONGPASS", "AUTH", "wrong")
	c.expectSimple("OK", "AUTH", "au")
	c.expectSimple("OK", "SET", "shared", "gold-value")
	c.expectBulk("gold-value", "GET", "shared")

	c2 := dial(t, s)
	c2.expectSimple("OK", "AUTH", "pb")
	// Hits are global (the paper's design): lead reads gold's line.
	c2.expectBulk("gold-value", "GET", "shared")

	// The traffic must be accounted to the right tenants.
	stats := s.Cache().Stats()
	if stats[0].Hits == 0 || stats[1].Hits == 0 {
		t.Fatalf("per-tenant accounting missing: %+v", stats)
	}
	if got := s.Cache().Quotas(); got[0] != 6 || got[1] != 2 {
		t.Fatalf("quotas not installed: %v", got)
	}
	info := c.do("INFO")
	for _, want := range []string{"tenant0:name=gold,policy=LRU,ways=6,budget_bytes=1048576", "tenant1:name=lead,policy=LRU,ways=2"} {
		if !strings.Contains(string(info.Str), want) {
			t.Fatalf("INFO missing %q:\n%s", want, info.Str)
		}
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{Tenants: []TenantConfig{{Name: "a", Password: "x"}, {Name: "b"}}}); err == nil {
		t.Fatal("missing password for tenant b not rejected")
	}
	if _, err := New(Config{Tenants: []TenantConfig{{Name: "a", Password: "x"}, {Name: "b", Password: "x"}}}); err == nil {
		t.Fatal("duplicate password not rejected")
	}
	if _, err := New(Config{Tenants: []TenantConfig{{Name: "a", Password: "x", Ways: 4}, {Name: "b", Password: "y"}}}); err == nil {
		t.Fatal("partial quotas not rejected")
	}
	if _, err := New(Config{Ways: 8, Tenants: []TenantConfig{{Name: "a", Password: "x", Ways: 4}, {Name: "b", Password: "y", Ways: 2}}}); err == nil {
		t.Fatal("quotas not summing to ways not rejected")
	}
}

// TestServerDrain checks the graceful path: a pipelined burst written
// just before Shutdown is fully answered, idle blocked connections are
// woken and closed, Serve returns nil.
func TestServerDrain(t *testing.T) {
	s, err := New(Config{Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	idle, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	busy, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	burst := strings.Repeat("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n", 64) + "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
	if _, err := busy.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	// Flush-on-idle means the first reply only appears once the whole
	// burst has been parsed and answered; reading it here guarantees the
	// burst is in flight back to us before the drain starts.
	r := resp.NewReader(busy)
	if rep, err := r.ReadReply(); err != nil || string(rep.Str) != "OK" {
		t.Fatalf("burst reply 0: %+v %v", rep, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}

	// Every reply of the in-flight burst must still arrive after the
	// drain: 63 more +OK then the bulk value.
	for i := 1; i < 64; i++ {
		rep, err := r.ReadReply()
		if err != nil || string(rep.Str) != "OK" {
			t.Fatalf("burst reply %d: %+v %v", i, rep, err)
		}
	}
	if rep, err := r.ReadReply(); err != nil || string(rep.Str) != "v" {
		t.Fatalf("final burst reply: %+v %v", rep, err)
	}

	// The idle connection must be closed (drain woke its reader).
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := resp.NewReader(idle).ReadReply(); err == nil {
		t.Fatal("idle connection still open after drain")
	}

	// Shutdown is idempotent; new Serves are refused.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	ln2, _ := net.Listen("tcp", "127.0.0.1:0")
	if err := s.Serve(ln2); err == nil {
		t.Fatal("Serve accepted a listener after shutdown")
	}
}

// TestServerConfigGetStub covers the CONFIG GET compatibility stub the
// standard redis load generators probe on connect.
func TestServerConfigGetStub(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Sets: 64, Ways: 8, Policy: plru.LRU})
	c := dial(t, s)

	pairs := func(args ...string) map[string]string {
		t.Helper()
		rep := c.do(args...)
		if rep.Kind != resp.KindArray || len(rep.Array)%2 != 0 {
			t.Fatalf("%v => %+v, want flat key/value array", args, rep)
		}
		got := make(map[string]string, len(rep.Array)/2)
		for i := 0; i < len(rep.Array); i += 2 {
			got[string(rep.Array[i].Str)] = string(rep.Array[i+1].Str)
		}
		return got
	}
	if got := pairs("CONFIG", "GET", "maxmemory"); len(got) != 1 || got["maxmemory"] != "0" {
		t.Fatalf("CONFIG GET maxmemory = %v, want {maxmemory: 0} on an uncapped server", got)
	}
	if got := pairs("CONFIG", "GET", "maxmemory-policy"); len(got) != 1 || got["maxmemory-policy"] != "noeviction" {
		t.Fatalf("CONFIG GET maxmemory-policy = %v, want noeviction on an uncapped server", got)
	}
	if got := pairs("config", "get", "SAVE"); len(got) != 1 || got["save"] != "" {
		t.Fatalf("CONFIG GET save = %v, want {save: \"\"}", got)
	}
	if got := pairs("CONFIG", "GET", "appendonly"); len(got) != 1 || got["appendonly"] != "no" {
		t.Fatalf("CONFIG GET appendonly = %v, want {appendonly: no}", got)
	}
	if got := pairs("CONFIG", "GET", "*"); len(got) != 4 {
		t.Fatalf("CONFIG GET * = %v, want all four stubbed parameters", got)
	}
	if got := pairs("CONFIG", "GET", "maxclients"); len(got) != 0 {
		t.Fatalf("CONFIG GET maxclients = %v, want empty array for unknown parameter", got)
	}
	c.expectErrPrefix("ERR CONFIG SET is not supported", "CONFIG", "SET", "maxmemory", "100")
	c.expectErrPrefix("ERR wrong number of arguments", "CONFIG")
	c.expectErrPrefix("ERR wrong number of arguments", "CONFIG", "GET")
}

// TestServerInfoTenantPolicies pins INFO's policy surface: the
// configured base policy, the auto-select bit, the switch counter, and
// one policy=<kind> field per tenant line.
func TestServerInfoTenantPolicies(t *testing.T) {
	s := startServer(t, Config{
		Shards: 2, Sets: 64, Ways: 8, Policy: plru.LRU,
		PolicyAutoSelect: true,
		Tenants: []TenantConfig{
			{Name: "gold", Password: "g"},
			{Name: "lead", Password: "l"},
		},
	})
	c := dial(t, s)
	c.expectSimple("OK", "AUTH", "g")
	rep := c.do("INFO")
	if rep.Kind != resp.KindBulk {
		t.Fatalf("INFO => %+v, want bulk", rep)
	}
	info := string(rep.Str)
	for _, want := range []string{
		"policy:LRU",
		"policy_autoselect:1",
		"policy_switches:0",
		"tenant0:name=gold,policy=LRU,",
		"tenant1:name=lead,policy=LRU,",
	} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]plru.Kind{
		"lru": plru.LRU, "NRU": plru.NRU, "bt": plru.BT, "Random": plru.Random,
		"awrp": plru.AWRP, "ARC": plru.ARC,
	} {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("clock"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
