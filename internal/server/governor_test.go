package server

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/resp"
	"repro/pkg/plru"
)

// infoField digs one key:value line out of an INFO reply.
func infoField(t *testing.T, c *client, key string) string {
	t.Helper()
	rep := c.do("INFO")
	if rep.Kind != resp.KindBulk {
		t.Fatalf("INFO => %+v, want bulk", rep)
	}
	for _, line := range strings.Split(string(rep.Str), "\r\n") {
		if v, ok := strings.CutPrefix(line, key+":"); ok {
			return v
		}
	}
	t.Fatalf("INFO has no %q field:\n%s", key, rep.Str)
	return ""
}

// TestServerMemoryGovernor walks a byte-capped server up the pressure
// ladder and back down: filling drives it into the OOM state, where
// writes get redis's -OOM refusal while reads, TTL queries, INFO and —
// critically — DEL keep working; deleting below the low watermark
// recovers the server and writes flow again. CONFIG GET reports the
// real cap and eviction policy throughout.
func TestServerMemoryGovernor(t *testing.T) {
	const maxBytes = 4096
	s := startServer(t, Config{
		Shards: 1, Sets: 64, Ways: 8, Policy: plru.LRU,
		MaxBytes:      maxBytes,
		HighWatermark: 0.9,
		LowWatermark:  0.75,
	})
	c := dial(t, s)

	// Each entry costs ~64 bytes (4-byte-ish key + 60-byte value); the
	// slot capacity (512 lines) is far above the byte cap, so the cap is
	// what binds.
	val := strings.Repeat("v", 60)
	var accepted, oomAt int
	for i := 0; i < 200; i++ {
		rep := c.do("SET", "k"+strconv.Itoa(i), val)
		if rep.IsErr() {
			if !strings.HasPrefix(string(rep.Str), "OOM command not allowed when used memory > 'maxmemory'") {
				t.Fatalf("SET refused with %q, want redis's OOM message", rep.Str)
			}
			oomAt = i
			break
		}
		accepted++
	}
	if oomAt == 0 {
		t.Fatalf("200 inserts (%d accepted) never drove the server into OOM", accepted)
	}
	if got := infoField(t, c, "pressure_state"); got != "oom" {
		t.Fatalf("pressure_state = %q after OOM refusal, want oom", got)
	}
	used, err := strconv.ParseUint(infoField(t, c, "used_memory"), 10, 64)
	if err != nil || used == 0 || used > maxBytes {
		t.Fatalf("used_memory = %q (err %v), want 1..%d", infoField(t, c, "used_memory"), err, maxBytes)
	}
	if got := infoField(t, c, "maxmemory"); got != strconv.Itoa(maxBytes) {
		t.Fatalf("maxmemory = %q, want %d", got, maxBytes)
	}
	if n, _ := strconv.Atoi(infoField(t, c, "oom_rejected_ops")); n == 0 {
		t.Fatal("oom_rejected_ops stayed 0 after an OOM refusal")
	}

	// Reads, existence probes and TTL management all keep working at OOM.
	c.expectBulk(val, "GET", "k"+strconv.Itoa(accepted-1))
	c.expectInt(1, "EXISTS", "k"+strconv.Itoa(accepted-1))
	c.expectInt(1, "EXPIRE", "k"+strconv.Itoa(accepted-1), "100")
	c.expectErrPrefix("OOM", "MSET", "a", "1", "b", "2")

	// CONFIG GET reports the truth on a capped server.
	rep := c.do("CONFIG", "GET", "maxmemory")
	if rep.Kind != resp.KindArray || len(rep.Array) != 2 || string(rep.Array[1].Str) != strconv.Itoa(maxBytes) {
		t.Fatalf("CONFIG GET maxmemory => %+v, want %d", rep, maxBytes)
	}
	rep = c.do("CONFIG", "GET", "maxmemory-policy")
	if rep.Kind != resp.KindArray || len(rep.Array) != 2 || string(rep.Array[1].Str) != "allkeys-lru" {
		t.Fatalf("CONFIG GET maxmemory-policy => %+v, want allkeys-lru", rep)
	}

	// DEL is the escape hatch: drain below the low watermark (75% of
	// 4096 = 3072) and the ladder clears.
	for i := 0; i < accepted/2; i++ {
		c.do("DEL", "k"+strconv.Itoa(i))
	}
	if got := infoField(t, c, "pressure_state"); got != "ok" {
		t.Fatalf("pressure_state = %q after draining half the keys, want ok", got)
	}
	c.expectSimple("OK", "SET", "recovered", "yes")
	c.expectBulk("yes", "GET", "recovered")
}

// TestServerEntryTooLarge covers the other -OOM source: an entry whose
// cost alone exceeds the cap can never be admitted, at any pressure
// level, while admissible writes around it keep working.
func TestServerEntryTooLarge(t *testing.T) {
	s := startServer(t, Config{
		Shards: 1, Sets: 16, Ways: 4, Policy: plru.LRU,
		MaxBytes: 512,
	})
	c := dial(t, s)

	c.expectSimple("OK", "SET", "small", "x")
	c.expectErrPrefix("OOM", "SET", "big", strings.Repeat("x", 600))
	c.expectNull("GET", "big")
	// An oversized pair inside MSET is skipped; the rest is applied.
	c.expectErrPrefix("OOM", "MSET", "a", "1", "big", strings.Repeat("x", 600), "b", "2")
	c.expectBulk("1", "GET", "a")
	c.expectBulk("2", "GET", "b")
	c.expectNull("GET", "big")
	if n, _ := strconv.Atoi(infoField(t, c, "oom_rejected_ops")); n != 2 {
		t.Fatalf("oom_rejected_ops = %d, want 2", n)
	}
	if got := infoField(t, c, "pressure_state"); got != "ok" {
		t.Fatalf("pressure_state = %q, want ok (rejections are not pressure)", got)
	}
}

// TestServerExpirePersist pins the EXPIRE/PEXPIRE/PERSIST surface to
// redis's conventions, including the missing-key and non-positive-
// timeout edges, round-tripped through TTL/PTTL.
func TestServerExpirePersist(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Sets: 64, Ways: 8, Policy: plru.LRU})
	c := dial(t, s)

	// Missing keys: 0 across the board.
	c.expectInt(0, "EXPIRE", "ghost", "10")
	c.expectInt(0, "PEXPIRE", "ghost", "10000")
	c.expectInt(0, "PERSIST", "ghost")

	// EXPIRE arms a deadline on a live key; TTL sees it; PERSIST clears
	// it; a second PERSIST has nothing left to clear.
	c.expectSimple("OK", "SET", "k", "v")
	c.expectInt(-1, "TTL", "k")
	c.expectInt(0, "PERSIST", "k")
	c.expectInt(1, "EXPIRE", "k", "100")
	rep := c.do("TTL", "k")
	if rep.Kind != resp.KindInt || rep.Int < 99 || rep.Int > 100 {
		t.Fatalf("TTL after EXPIRE 100 => %+v, want ≈100", rep)
	}
	rep = c.do("PTTL", "k")
	if rep.Kind != resp.KindInt || rep.Int < 99_000 || rep.Int > 100_000 {
		t.Fatalf("PTTL after EXPIRE 100 => %+v, want ≈100000", rep)
	}
	c.expectInt(1, "PERSIST", "k")
	c.expectInt(-1, "TTL", "k")
	c.expectInt(0, "PERSIST", "k")
	c.expectBulk("v", "GET", "k")

	// PEXPIRE re-arms in milliseconds and the entry actually dies.
	c.expectInt(1, "PEXPIRE", "k", "30")
	time.Sleep(60 * time.Millisecond)
	c.expectNull("GET", "k")
	c.expectInt(-2, "TTL", "k")

	// A non-positive timeout deletes the key, as redis does.
	c.expectSimple("OK", "SET", "doomed", "v")
	c.expectInt(1, "EXPIRE", "doomed", "0")
	c.expectInt(0, "EXISTS", "doomed")
	c.expectNull("GET", "doomed")
	c.expectSimple("OK", "SET", "doomed2", "v")
	c.expectInt(1, "PEXPIRE", "doomed2", "-5")
	c.expectInt(0, "EXISTS", "doomed2")

	// Parse and range edges: garbage is an error, a huge timeout clamps
	// instead of overflowing into the past.
	c.expectErrPrefix("ERR value is not an integer", "EXPIRE", "k", "soon")
	c.expectSimple("OK", "SET", "k", "v")
	c.expectInt(1, "EXPIRE", "k", "9223372036854775807")
	rep = c.do("TTL", "k")
	if rep.Kind != resp.KindInt || rep.Int <= 0 {
		t.Fatalf("TTL after clamped huge EXPIRE => %+v, want positive", rep)
	}
	c.expectErrPrefix("ERR wrong number of arguments", "EXPIRE", "k")
	c.expectErrPrefix("ERR wrong number of arguments", "PERSIST")
}
