package server

import (
	"sync/atomic"
	"time"
)

// Token-bucket admission control for the per-command hot path. The
// bucket is GCRA-shaped: a single atomic word holds the theoretical
// arrival time (TAT) of the next conforming request, so admitting a
// command is one load, one comparison and one CAS — no locks, no
// allocation — and every connection of a tenant can share the same
// bucket without contention beyond the CAS itself.

// tokenBucket admits n tokens at a steady rate with a bounded burst.
// The zero value admits everything (unlimited).
type tokenBucket struct {
	interval int64 // ns between tokens; 0 = unlimited
	tau      int64 // burst tolerance in ns (burst × interval)
	tat      atomic.Int64
}

// init configures the bucket for rate tokens/s with the given burst
// capacity. rate <= 0 leaves the bucket unlimited.
func (b *tokenBucket) init(rate, burst float64) {
	if rate <= 0 {
		return
	}
	b.interval = int64(float64(time.Second) / rate)
	if b.interval < 1 {
		b.interval = 1
	}
	if burst < 1 {
		burst = 1
	}
	b.tau = int64(burst * float64(b.interval))
}

// take admits n tokens at time now (UnixNano) or reports the bucket
// exhausted. Rejected requests consume nothing, so a throttled client
// that backs off is not punished for having asked.
func (b *tokenBucket) take(now, n int64) bool {
	if b.interval == 0 {
		return true
	}
	cost := n * b.interval
	for {
		tat := b.tat.Load()
		t := tat
		if now > t {
			t = now
		}
		t += cost
		if t-now > b.tau {
			return false
		}
		if b.tat.CompareAndSwap(tat, t) {
			return true
		}
	}
}

// tenantLimiter is one tenant's admission state: an ops/s bucket and a
// request-bytes/s bucket, padded so adjacent tenants' CAS traffic does
// not share a cache line.
type tenantLimiter struct {
	ops   tokenBucket
	bytes tokenBucket
	_     [16]byte
}

// init configures per-tenant limits; either rate may be 0 (unlimited).
// Bursts default to one second's worth, floored so shallow limits still
// admit a pipelined batch (32 ops) or one large command (64 KiB).
func (l *tenantLimiter) init(opsRate, bytesRate float64) {
	opsBurst := opsRate
	if opsBurst < 32 {
		opsBurst = 32
	}
	l.ops.init(opsRate, opsBurst)
	bytesBurst := bytesRate
	if bytesBurst < 64<<10 {
		bytesBurst = 64 << 10
	}
	l.bytes.init(bytesRate, bytesBurst)
}

// admit charges one command carrying nbytes of request payload. The
// buckets are charged in order; a command that passes ops but fails
// bytes has spent its op token — refunding would cost a second CAS
// pass on every admission and the error is bounded at one token per
// rejection.
func (l *tenantLimiter) admit(now int64, nbytes int) bool {
	return l.ops.take(now, 1) && l.bytes.take(now, int64(nbytes))
}

// argsBytes is the admission size of a command: the sum of its argument
// lengths, i.e. the attacker-controlled payload it carried.
func argsBytes(args [][]byte) int {
	n := 0
	for _, a := range args {
		n += len(a)
	}
	return n
}
