// Allocation guards are meaningless under the race detector's
// instrumented allocator, so this file is excluded from -race runs.

//go:build !race

package server

import (
	"testing"
	"time"
)

// TestAdmissionZeroAlloc pins the rate-limit admission path at zero
// allocations per command: it runs on every dispatch, so a single
// stray allocation would show up as GC pressure at full load.
func TestAdmissionZeroAlloc(t *testing.T) {
	var l tenantLimiter
	l.init(1e6, 64<<20)
	args := [][]byte{[]byte("SET"), []byte("key:0000000001"), make([]byte, 128)}
	now := time.Now().UnixNano()
	avg := testing.AllocsPerRun(1000, func() {
		now += int64(time.Microsecond)
		if !l.admit(now, argsBytes(args)) {
			t.Fatal("admission refused under its configured rate")
		}
	})
	if avg != 0 {
		t.Fatalf("admit allocates %v allocs/op, want 0", avg)
	}
}

// TestAdmissionZeroAllocRejected pins the rejection path too — an
// overloaded server must not allocate while saying no.
func TestAdmissionZeroAllocRejected(t *testing.T) {
	var l tenantLimiter
	l.init(1, 0)
	args := [][]byte{[]byte("GET"), []byte("k")}
	now := time.Now().UnixNano()
	for l.admit(now, argsBytes(args)) {
	} // drain the burst
	avg := testing.AllocsPerRun(1000, func() {
		if l.admit(now, argsBytes(args)) {
			t.Fatal("admission granted past the burst with no time passing")
		}
	})
	if avg != 0 {
		t.Fatalf("rejecting admit allocates %v allocs/op, want 0", avg)
	}
}
