// Package loadgen is cpaload's engine: a memtier-style RESP load
// driver. It opens N connections, each running pipelined batches of
// GET/SET against a configurable key space (uniform or zipf-skewed),
// and reports throughput plus latency percentiles from a log-scale
// histogram. The engine is a library so integration tests can drive a
// server in-process with the exact code path the CLI uses.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resp"
)

// Config parameterizes one load run.
type Config struct {
	Addr     string        // server address (host:port)
	Conns    int           // concurrent connections (default 4)
	Pipeline int           // commands per batch (default 16)
	Requests int           // total requests across all connections (default 100k)
	Duration time.Duration // optional wall-clock cap (0 = run to Requests)

	KeySpace  int     // distinct keys (default 10k)
	ValueSize int     // value bytes (default 128)
	SetRatio  float64 // fraction of SETs, 0..1 (default 0.1)
	ZipfS     float64 // zipf skew; <=1 means uniform (default 0 = uniform)
	TTL       time.Duration
	Auth      string // AUTH password sent on connect ("" = none)
	Seed      int64  // base RNG seed (default 1); conn i uses Seed+i

	// Reconnect enables fault-tolerant mode: a connection error (reset,
	// timeout, server restart, max-clients rejection) triggers a
	// reconnect under exponential backoff with jitter, and every
	// request that was claimed but never acknowledged goes back into
	// the shared budget to be retried — so a completed run means every
	// request was individually acknowledged, faults or not.
	Reconnect bool
	// RequestTimeout bounds one pipelined batch round trip, write to
	// last reply (0 = none). Expiry counts as a connection error.
	RequestTimeout time.Duration
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
}

func (c *Config) withDefaults() {
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.Pipeline == 0 {
		c.Pipeline = 16
	}
	if c.Requests == 0 {
		c.Requests = 100_000
	}
	if c.KeySpace == 0 {
		c.KeySpace = 10_000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 128
	}
	if c.SetRatio == 0 {
		c.SetRatio = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result is the aggregate outcome of a load run.
type Result struct {
	Requests  int           `json:"requests"`
	Gets      int           `json:"gets"`
	Sets      int           `json:"sets"`
	Hits      int           `json:"hits"`
	Misses    int           `json:"misses"`
	ErrReplys int           `json:"error_replies"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	ReqPerSec float64       `json:"req_per_sec"`
	HitRate   float64       `json:"hit_rate"`

	// Overload accounting (nonzero only against a faulty or throttling
	// server): RateLimited counts -BUSY refusals, RejectedConns counts
	// max-clients rejections, OOMRejected counts -OOM memory-pressure
	// write refusals, RetriedOps counts requests returned to the budget
	// after a refusal or a dead connection, Reconnects counts re-dials.
	// Refused/retried requests are not in Requests; a request counts
	// once, when acknowledged.
	RateLimited   int `json:"rate_limited"`
	RejectedConns int `json:"rejected_conns"`
	OOMRejected   int `json:"oom_rejected"`
	RetriedOps    int `json:"retried_ops"`
	Reconnects    int `json:"reconnects"`

	// Latency percentiles are per-request, measured as the round trip
	// of the pipelined batch the request rode in (memtier convention).
	P50  time.Duration `json:"p50_ns"`
	P90  time.Duration `json:"p90_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`
}

// histBuckets is the log2 histogram size: bucket i counts latencies in
// [2^i, 2^(i+1)) ns, so 42 buckets span past an hour.
const histBuckets = 42

type hist struct {
	buckets [histBuckets]uint64
	max     time.Duration
	count   uint64
}

func (h *hist) add(d time.Duration, n uint64) {
	if d < 1 {
		d = 1
	}
	b := 0
	for v := uint64(d); v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b] += n
	h.count += n
	if d > h.max {
		h.max = d
	}
}

func (h *hist) merge(o *hist) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// percentile returns the upper bound of the bucket holding the q-th
// quantile (q in (0,1]); resolution is a factor of 2, which is enough
// to gate order-of-magnitude regressions.
func (h *hist) percentile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if ub := time.Duration(uint64(1) << uint(i+1)); ub < h.max {
				return ub
			}
			return h.max
		}
	}
	return h.max
}

type workerStats struct {
	gets, sets, hits, misses, errs int
	rateLimited, rejectedConns     int
	oomRejected                    int
	retried, reconnects            int
	lat                            hist
}

// Run executes the configured load and blocks until the request target
// is hit, the duration elapses, or ctx is canceled — whichever first.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg.withDefaults()
	if cfg.Addr == "" {
		return Result{}, fmt.Errorf("loadgen: no server address")
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	var remaining atomic.Int64
	remaining.Store(int64(cfg.Requests))
	stats := make([]workerStats, cfg.Conns)
	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = runConn(ctx, cfg, int64(id), &remaining, &stats[id])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerStats
	for i := range stats {
		if errs[i] != nil {
			return Result{}, fmt.Errorf("loadgen: conn %d: %w", i, errs[i])
		}
		total.gets += stats[i].gets
		total.sets += stats[i].sets
		total.hits += stats[i].hits
		total.misses += stats[i].misses
		total.errs += stats[i].errs
		total.rateLimited += stats[i].rateLimited
		total.rejectedConns += stats[i].rejectedConns
		total.oomRejected += stats[i].oomRejected
		total.retried += stats[i].retried
		total.reconnects += stats[i].reconnects
		total.lat.merge(&stats[i].lat)
	}
	n := total.gets + total.sets
	res := Result{
		Requests:      n,
		Gets:          total.gets,
		Sets:          total.sets,
		Hits:          total.hits,
		Misses:        total.misses,
		ErrReplys:     total.errs,
		RateLimited:   total.rateLimited,
		RejectedConns: total.rejectedConns,
		OOMRejected:   total.oomRejected,
		RetriedOps:    total.retried,
		Reconnects:    total.reconnects,
		Elapsed:       elapsed,
		P50:           total.lat.percentile(0.50),
		P90:           total.lat.percentile(0.90),
		P99:           total.lat.percentile(0.99),
		P999:          total.lat.percentile(0.999),
		Max:           total.lat.max,
	}
	if elapsed > 0 {
		res.ReqPerSec = float64(n) / elapsed.Seconds()
	}
	if total.gets > 0 {
		res.HitRate = float64(total.hits) / float64(total.gets)
	}
	return res, nil
}

// claim takes up to max requests from the shared budget without ever
// driving it negative, so requeued (retried) requests stay claimable.
func claim(remaining *atomic.Int64, max int) int {
	for {
		cur := remaining.Load()
		if cur <= 0 {
			return 0
		}
		n := int64(max)
		if cur < n {
			n = cur
		}
		if remaining.CompareAndSwap(cur, cur-n) {
			return int(n)
		}
	}
}

// requeue returns n unacknowledged requests to the budget to be
// claimed — and so acknowledged — again.
func requeue(remaining *atomic.Int64, st *workerStats, n int) {
	if n > 0 {
		remaining.Add(int64(n))
		st.retried += n
	}
}

// permanentError marks failures retrying cannot fix (AUTH refusals);
// it aborts the run even in Reconnect mode.
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// isRejection recognizes the server's connection-cap refusal, which
// arrives as an error reply just before the server closes the socket.
func isRejection(msg []byte) bool {
	return strings.HasPrefix(string(msg), "ERR max number of clients")
}

// runConn drives one connection slot. Without Reconnect the first
// session error ends the run, as a benchmark wants. With Reconnect the
// slot survives the server's faults: every failed session requeues its
// in-flight requests, then re-dials under exponential backoff with
// full jitter (so a fleet of reconnecting clients does not stampede
// the accept loop in lockstep).
func runConn(ctx context.Context, cfg Config, id int64, remaining *atomic.Int64, st *workerStats) error {
	rng := rand.New(rand.NewSource(cfg.Seed + id))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.KeySpace-1))
	}
	value := make([]byte, cfg.ValueSize)
	rng.Read(value)
	var ttlArg []byte
	if cfg.TTL > 0 {
		ttlArg = []byte(fmt.Sprintf("%d", cfg.TTL.Milliseconds()))
	}
	sess := &session{cfg: cfg, rng: rng, zipf: zipf, value: value, ttlArg: ttlArg,
		remaining: remaining, st: st, isGet: make([]bool, cfg.Pipeline)}

	var backoff time.Duration
	for {
		if ctx.Err() != nil {
			return nil
		}
		progressed, err := sess.run(ctx)
		if err == nil {
			return nil // budget exhausted or ctx canceled
		}
		var perm *permanentError
		if errors.As(err, &perm) || !cfg.Reconnect {
			return err
		}
		st.reconnects++
		if progressed {
			backoff = 0
		}
		if backoff == 0 {
			backoff = time.Millisecond
		} else if backoff *= 2; backoff > 200*time.Millisecond {
			backoff = 200 * time.Millisecond
		}
		delay := backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(delay):
		}
	}
}

// session is one connection's worth of load-driving state, reused
// across reconnects so key/op sequences stay on the worker's RNG.
type session struct {
	cfg       Config
	rng       *rand.Rand
	zipf      *rand.Zipf
	value     []byte
	ttlArg    []byte
	remaining *atomic.Int64
	st        *workerStats
	isGet     []bool
}

func (s *session) nextKey() string {
	var k uint64
	if s.zipf != nil {
		k = s.zipf.Uint64()
	} else {
		k = uint64(s.rng.Intn(s.cfg.KeySpace))
	}
	return fmt.Sprintf("key:%010d", k)
}

// run dials once and drives batches until the budget drains, the
// context cancels (both return nil), or the connection fails (the
// error, with everything unacknowledged already requeued). progressed
// reports whether any request was acknowledged, which resets the
// caller's backoff.
func (s *session) run(ctx context.Context) (progressed bool, err error) {
	cfg := s.cfg
	st := s.st
	dialTimeout := cfg.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", cfg.Addr, dialTimeout)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)

	if cfg.Auth != "" {
		if cfg.RequestTimeout > 0 {
			conn.SetDeadline(time.Now().Add(cfg.RequestTimeout))
		}
		w.WriteCommandString("AUTH", cfg.Auth)
		if err := w.Flush(); err != nil {
			return false, err
		}
		rep, err := r.ReadReply()
		if err != nil {
			return false, err
		}
		if rep.IsErr() {
			if isRejection(rep.Str) {
				st.rejectedConns++
				return false, fmt.Errorf("AUTH: %s", rep.Str)
			}
			return false, &permanentError{msg: fmt.Sprintf("AUTH: %s", rep.Str)}
		}
	}

	for {
		if ctx.Err() != nil {
			return progressed, nil
		}
		batch := claim(s.remaining, cfg.Pipeline)
		if batch <= 0 {
			return progressed, nil
		}
		acked := 0
		if cfg.RequestTimeout > 0 {
			conn.SetDeadline(time.Now().Add(cfg.RequestTimeout))
		}
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			key := s.nextKey()
			if s.rng.Float64() < cfg.SetRatio {
				s.isGet[i] = false
				if s.ttlArg != nil {
					w.WriteCommand([]byte("SET"), []byte(key), s.value, []byte("PX"), s.ttlArg)
				} else {
					w.WriteCommand([]byte("SET"), []byte(key), s.value)
				}
			} else {
				s.isGet[i] = true
				w.WriteCommand([]byte("GET"), []byte(key))
			}
		}
		if err := w.Flush(); err != nil {
			requeue(s.remaining, st, batch-acked)
			return progressed, err
		}
		for i := 0; i < batch; i++ {
			rep, err := r.ReadReply()
			if err != nil {
				requeue(s.remaining, st, batch-acked)
				return progressed, err
			}
			acked++
			switch {
			case rep.IsErr():
				switch msg := rep.Str; {
				case strings.HasPrefix(string(msg), "BUSY"):
					// Rate limited: the op did not execute; requeue it.
					st.rateLimited++
					requeue(s.remaining, st, 1)
				case isRejection(msg):
					// The accept-time cap rejection is not a reply to
					// our command — the op never executed.
					st.rejectedConns++
					requeue(s.remaining, st, 1)
				case strings.HasPrefix(string(msg), "OOM"):
					// Memory pressure refused the write: nothing was
					// stored, so the op is NOT acknowledged. Requeue it
					// to run after the server recovers — an acked
					// request always reached the cache.
					st.oomRejected++
					requeue(s.remaining, st, 1)
				default:
					st.errs++
					progressed = true
				}
			case s.isGet[i]:
				st.gets++
				if rep.Null {
					st.misses++
				} else {
					st.hits++
				}
				progressed = true
			default:
				st.sets++
				progressed = true
			}
		}
		st.lat.add(time.Since(t0), uint64(batch))
	}
}
