// Package loadgen is cpaload's engine: a memtier-style RESP load
// driver. It opens N connections, each running pipelined batches of
// GET/SET against a configurable key space (uniform or zipf-skewed),
// and reports throughput plus latency percentiles from a log-scale
// histogram. The engine is a library so integration tests can drive a
// server in-process with the exact code path the CLI uses.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resp"
)

// Config parameterizes one load run.
type Config struct {
	Addr     string        // server address (host:port)
	Conns    int           // concurrent connections (default 4)
	Pipeline int           // commands per batch (default 16)
	Requests int           // total requests across all connections (default 100k)
	Duration time.Duration // optional wall-clock cap (0 = run to Requests)

	KeySpace  int     // distinct keys (default 10k)
	ValueSize int     // value bytes (default 128)
	SetRatio  float64 // fraction of SETs, 0..1 (default 0.1)
	ZipfS     float64 // zipf skew; <=1 means uniform (default 0 = uniform)
	TTL       time.Duration
	Auth      string // AUTH password sent on connect ("" = none)
	Seed      int64  // base RNG seed (default 1); conn i uses Seed+i
}

func (c *Config) withDefaults() {
	if c.Conns == 0 {
		c.Conns = 4
	}
	if c.Pipeline == 0 {
		c.Pipeline = 16
	}
	if c.Requests == 0 {
		c.Requests = 100_000
	}
	if c.KeySpace == 0 {
		c.KeySpace = 10_000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 128
	}
	if c.SetRatio == 0 {
		c.SetRatio = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result is the aggregate outcome of a load run.
type Result struct {
	Requests  int           `json:"requests"`
	Gets      int           `json:"gets"`
	Sets      int           `json:"sets"`
	Hits      int           `json:"hits"`
	Misses    int           `json:"misses"`
	ErrReplys int           `json:"error_replies"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	ReqPerSec float64       `json:"req_per_sec"`
	HitRate   float64       `json:"hit_rate"`

	// Latency percentiles are per-request, measured as the round trip
	// of the pipelined batch the request rode in (memtier convention).
	P50  time.Duration `json:"p50_ns"`
	P90  time.Duration `json:"p90_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`
}

// histBuckets is the log2 histogram size: bucket i counts latencies in
// [2^i, 2^(i+1)) ns, so 42 buckets span past an hour.
const histBuckets = 42

type hist struct {
	buckets [histBuckets]uint64
	max     time.Duration
	count   uint64
}

func (h *hist) add(d time.Duration, n uint64) {
	if d < 1 {
		d = 1
	}
	b := 0
	for v := uint64(d); v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b] += n
	h.count += n
	if d > h.max {
		h.max = d
	}
}

func (h *hist) merge(o *hist) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
}

// percentile returns the upper bound of the bucket holding the q-th
// quantile (q in (0,1]); resolution is a factor of 2, which is enough
// to gate order-of-magnitude regressions.
func (h *hist) percentile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if ub := time.Duration(uint64(1) << uint(i+1)); ub < h.max {
				return ub
			}
			return h.max
		}
	}
	return h.max
}

type workerStats struct {
	gets, sets, hits, misses, errs int
	lat                            hist
}

// Run executes the configured load and blocks until the request target
// is hit, the duration elapses, or ctx is canceled — whichever first.
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg.withDefaults()
	if cfg.Addr == "" {
		return Result{}, fmt.Errorf("loadgen: no server address")
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	var remaining atomic.Int64
	remaining.Store(int64(cfg.Requests))
	stats := make([]workerStats, cfg.Conns)
	errs := make([]error, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = runConn(ctx, cfg, int64(id), &remaining, &stats[id])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerStats
	for i := range stats {
		if errs[i] != nil {
			return Result{}, fmt.Errorf("loadgen: conn %d: %w", i, errs[i])
		}
		total.gets += stats[i].gets
		total.sets += stats[i].sets
		total.hits += stats[i].hits
		total.misses += stats[i].misses
		total.errs += stats[i].errs
		total.lat.merge(&stats[i].lat)
	}
	n := total.gets + total.sets
	res := Result{
		Requests:  n,
		Gets:      total.gets,
		Sets:      total.sets,
		Hits:      total.hits,
		Misses:    total.misses,
		ErrReplys: total.errs,
		Elapsed:   elapsed,
		P50:       total.lat.percentile(0.50),
		P90:       total.lat.percentile(0.90),
		P99:       total.lat.percentile(0.99),
		P999:      total.lat.percentile(0.999),
		Max:       total.lat.max,
	}
	if elapsed > 0 {
		res.ReqPerSec = float64(n) / elapsed.Seconds()
	}
	if total.gets > 0 {
		res.HitRate = float64(total.hits) / float64(total.gets)
	}
	return res, nil
}

// runConn drives one connection: claim a batch from the shared request
// budget, write it pipelined, read the replies, repeat.
func runConn(ctx context.Context, cfg Config, id int64, remaining *atomic.Int64, st *workerStats) error {
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)

	if cfg.Auth != "" {
		w.WriteCommandString("AUTH", cfg.Auth)
		if err := w.Flush(); err != nil {
			return err
		}
		rep, err := r.ReadReply()
		if err != nil {
			return err
		}
		if rep.IsErr() {
			return fmt.Errorf("AUTH: %s", rep.Str)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed + id))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.KeySpace-1))
	}
	nextKey := func() string {
		var k uint64
		if zipf != nil {
			k = zipf.Uint64()
		} else {
			k = uint64(rng.Intn(cfg.KeySpace))
		}
		return fmt.Sprintf("key:%010d", k)
	}
	value := make([]byte, cfg.ValueSize)
	rng.Read(value)
	var ttlArg []byte
	if cfg.TTL > 0 {
		ttlArg = []byte(fmt.Sprintf("%d", cfg.TTL.Milliseconds()))
	}

	isGet := make([]bool, cfg.Pipeline)
	for {
		if ctx.Err() != nil {
			return nil
		}
		batch := int(remaining.Add(-int64(cfg.Pipeline)) + int64(cfg.Pipeline))
		if batch <= 0 {
			return nil
		}
		if batch > cfg.Pipeline {
			batch = cfg.Pipeline
		}
		t0 := time.Now()
		for i := 0; i < batch; i++ {
			key := nextKey()
			if rng.Float64() < cfg.SetRatio {
				isGet[i] = false
				if ttlArg != nil {
					w.WriteCommand([]byte("SET"), []byte(key), value, []byte("PX"), ttlArg)
				} else {
					w.WriteCommand([]byte("SET"), []byte(key), value)
				}
			} else {
				isGet[i] = true
				w.WriteCommand([]byte("GET"), []byte(key))
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		for i := 0; i < batch; i++ {
			rep, err := r.ReadReply()
			if err != nil {
				return err
			}
			switch {
			case rep.IsErr():
				st.errs++
			case isGet[i]:
				st.gets++
				if rep.Null {
					st.misses++
				} else {
					st.hits++
				}
			default:
				st.sets++
			}
		}
		st.lat.add(time.Since(t0), uint64(batch))
	}
}
