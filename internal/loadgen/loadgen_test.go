package loadgen

import (
	"context"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resp"
)

// TestClaimBasics pins the budget-claim contract: claims are capped by
// both the batch size and what is left, and a drained (or somehow
// negative) budget claims zero.
func TestClaimBasics(t *testing.T) {
	var rem atomic.Int64
	rem.Store(100)
	if got := claim(&rem, 16); got != 16 {
		t.Fatalf("claim(100,16) = %d, want 16", got)
	}
	if rem.Load() != 84 {
		t.Fatalf("remaining = %d, want 84", rem.Load())
	}
	rem.Store(5)
	if got := claim(&rem, 16); got != 5 {
		t.Fatalf("claim(5,16) = %d, want the 5 remaining", got)
	}
	if got := claim(&rem, 16); got != 0 {
		t.Fatalf("claim on empty budget = %d, want 0", got)
	}
	rem.Store(-3)
	if got := claim(&rem, 16); got != 0 {
		t.Fatalf("claim on negative budget = %d, want 0", got)
	}
	if rem.Load() != -3 {
		t.Fatalf("claim on negative budget moved it to %d", rem.Load())
	}
}

// TestRequeueAccounting pins requeue's two effects — the budget grows
// back and the worker's retried counter advances — and that n<=0 is a
// no-op.
func TestRequeueAccounting(t *testing.T) {
	var rem atomic.Int64
	rem.Store(10)
	var st workerStats
	requeue(&rem, &st, 3)
	if rem.Load() != 13 || st.retried != 3 {
		t.Fatalf("after requeue(3): remaining=%d retried=%d, want 13/3", rem.Load(), st.retried)
	}
	requeue(&rem, &st, 0)
	requeue(&rem, &st, -5)
	if rem.Load() != 13 || st.retried != 3 {
		t.Fatalf("no-op requeues changed state: remaining=%d retried=%d", rem.Load(), st.retried)
	}
}

// TestClaimRequeueConservation hammers the shared budget from several
// goroutines that claim batches and requeue a bounded number of them,
// then checks the CAS loop's conservation law: everything claimed was
// either acknowledged or requeued, the requeued portion was claimable
// again, and the budget never went negative (a negative budget would
// surface as claim handing out more than budget+requeued in total).
func TestClaimRequeueConservation(t *testing.T) {
	const budget, workers = 50_000, 8
	var rem atomic.Int64
	rem.Store(budget)
	var acked, requeued atomic.Int64
	var requeueQuota atomic.Int64
	requeueQuota.Store(20_000) // bounded so the run terminates

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := uint64(id)*2654435761 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			var st workerStats
			for {
				n := claim(&rem, int(next()%31)+1)
				if n == 0 {
					requeued.Add(int64(st.retried))
					return
				}
				// Requeue a random prefix while quota lasts; ack the rest.
				back := int(next() % uint64(n+1))
				if q := requeueQuota.Add(int64(-back)); q < 0 {
					back = 0
				}
				requeue(&rem, &st, back)
				acked.Add(int64(n - back))
			}
		}(w)
	}
	wg.Wait()

	if got := rem.Load(); got < 0 {
		t.Fatalf("budget went negative: %d", got)
	}
	// Every requeued op re-enters the budget and is claimed (and so
	// counted) again, so the claimed total is budget+requeued and the
	// acked total collapses back to the budget — minus whatever leftover
	// survives when a worker exits on a transiently-empty budget just
	// before another worker requeues. Exactly: acked + leftover == budget.
	if acked.Load()+rem.Load() != budget {
		t.Fatalf("conservation broken: acked=%d leftover=%d requeued=%d budget=%d",
			acked.Load(), rem.Load(), requeued.Load(), budget)
	}
	if acked.Load() < budget/2 {
		t.Fatalf("only %d of %d acked — claim starved", acked.Load(), budget)
	}
}

// flakyServer is an in-process RESP server with scripted misbehavior:
// every busyEvery-th command is refused with -BUSY, and the first
// `kills` connections are dropped after killAfter replies (flushed
// first, so the cut lands mid-batch from the client's perspective).
// executed counts only GET/SET commands actually answered — the number
// the client-side ledger must reconcile against.
type flakyServer struct {
	ln        net.Listener
	busyEvery int64
	killAfter int64
	kills     atomic.Int64
	total     atomic.Int64
	executed  atomic.Int64

	mu    sync.Mutex
	store map[string][]byte
}

func newFlakyServer(t *testing.T, busyEvery, killAfter, kills int64) *flakyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &flakyServer{ln: ln, busyEvery: busyEvery, killAfter: killAfter, store: map[string][]byte{}}
	s.kills.Store(kills)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *flakyServer) serve(conn net.Conn) {
	defer conn.Close()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	var served int64
	for {
		args, err := r.ReadCommand()
		if err != nil || len(args) == 0 {
			return
		}
		if n := s.total.Add(1); s.busyEvery > 0 && n%s.busyEvery == 0 {
			w.Error("BUSY throttled, retry later")
		} else {
			switch strings.ToUpper(string(args[0])) {
			case "GET":
				s.mu.Lock()
				v, ok := s.store[string(args[1])]
				s.mu.Unlock()
				if ok {
					w.Bulk(v)
				} else {
					w.Null()
				}
				s.executed.Add(1)
			case "SET":
				s.mu.Lock()
				s.store[string(args[1])] = append([]byte(nil), args[2]...)
				s.mu.Unlock()
				w.SimpleString("OK")
				s.executed.Add(1)
			default:
				w.Error("ERR unknown command")
			}
		}
		served++
		if r.Buffered() == 0 {
			if w.Flush() != nil {
				return
			}
		}
		if s.killAfter > 0 && served == s.killAfter && s.kills.Add(-1) >= 0 {
			w.Flush()
			return
		}
	}
}

// TestRunReconnectLedger drives the full engine against a server that
// drops connections mid-batch and throws -BUSY refusals, and checks
// the at-least-once ledger the Reconnect contract promises:
//
//	R == cfg.Requests            every request acknowledged exactly once
//	S >= R                       nothing acked that the server never ran
//	S <= R + RetriedOps          every extra server-side execution is a
//	                             retry the client accounted for
//
// where R is the client's acknowledged count and S the server's
// executed count.
func TestRunReconnectLedger(t *testing.T) {
	// killAfter=23 is deliberately coprime with the pipeline depth (8),
	// so cuts land mid-batch and force real requeues.
	srv := newFlakyServer(t, 97, 23, 6)
	cfg := Config{
		Addr: srv.ln.Addr().String(), Conns: 3, Pipeline: 8, Requests: 3000,
		KeySpace: 100, ValueSize: 32, SetRatio: 0.3, Seed: 7,
		Reconnect: true, RequestTimeout: 2 * time.Second,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != cfg.Requests {
		t.Fatalf("acknowledged %d requests, want exactly %d", res.Requests, cfg.Requests)
	}
	if res.Gets+res.Sets != res.Requests {
		t.Fatalf("gets(%d)+sets(%d) != requests(%d)", res.Gets, res.Sets, res.Requests)
	}
	if res.Hits+res.Misses != res.Gets {
		t.Fatalf("hits(%d)+misses(%d) != gets(%d)", res.Hits, res.Misses, res.Gets)
	}
	if res.Reconnects < 1 {
		t.Fatalf("server cut 6 connections but Reconnects = %d", res.Reconnects)
	}
	if res.RetriedOps < 1 {
		t.Fatalf("mid-batch cuts happened but RetriedOps = %d", res.RetriedOps)
	}
	if res.RateLimited < 1 {
		t.Fatalf("server threw -BUSY but RateLimited = %d", res.RateLimited)
	}
	if res.RetriedOps < res.RateLimited {
		t.Fatalf("every -BUSY is a retry, but RetriedOps(%d) < RateLimited(%d)",
			res.RetriedOps, res.RateLimited)
	}
	S, R := int(srv.executed.Load()), res.Requests
	if S < R {
		t.Fatalf("server executed %d < %d acknowledged — acks invented from nowhere", S, R)
	}
	if S > R+res.RetriedOps {
		t.Fatalf("server executed %d > acknowledged %d + retried %d — lost accounting", S, R, res.RetriedOps)
	}
}

// TestRunWithoutReconnectFailsFast: in benchmark mode (Reconnect off) a
// dropped connection must surface as an error, not silent partial work.
func TestRunWithoutReconnectFailsFast(t *testing.T) {
	srv := newFlakyServer(t, 0, 1, 1<<30)
	cfg := Config{
		Addr: srv.ln.Addr().String(), Conns: 1, Pipeline: 8, Requests: 1000,
		KeySpace: 100, Seed: 3, RequestTimeout: 2 * time.Second,
	}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("Run succeeded against a connection-dropping server with Reconnect off")
	}
}
