package loadgen

import (
	"testing"
	"time"
)

func TestHistPercentiles(t *testing.T) {
	var h hist
	// 90 fast requests around 1µs, 10 slow around 1ms.
	h.add(1*time.Microsecond, 90)
	h.add(1*time.Millisecond, 10)
	if h.count != 100 {
		t.Fatalf("count = %d", h.count)
	}
	if p := h.percentile(0.50); p > 4*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs bucket", p)
	}
	if p := h.percentile(0.99); p < 512*time.Microsecond {
		t.Fatalf("p99 = %v, want ~1ms bucket", p)
	}
	if h.max != time.Millisecond {
		t.Fatalf("max = %v", h.max)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b hist
	a.add(10*time.Microsecond, 5)
	b.add(10*time.Second, 5)
	a.merge(&b)
	if a.count != 10 || a.max != 10*time.Second {
		t.Fatalf("merged: count=%d max=%v", a.count, a.max)
	}
	if p := a.percentile(1.0); p < 8*time.Second {
		t.Fatalf("p100 after merge = %v", p)
	}
}

func TestHistEdgeCases(t *testing.T) {
	var h hist
	if h.percentile(0.99) != 0 {
		t.Fatal("empty histogram should report 0")
	}
	h.add(0, 1) // sub-ns latencies clamp to the first bucket
	if h.percentile(0.5) == 0 {
		t.Fatal("clamped sample lost")
	}
	h.add(200*time.Hour, 1) // beyond the last bucket still lands somewhere
	if got := h.percentile(1.0); got == 0 {
		t.Fatalf("overflow sample lost: %v", got)
	}
}
