package resp

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzRESPParse throws arbitrary bytes at the command parser and checks
// its contract: no panics, no unbounded allocation (every returned
// argument respects the limits), protocol errors always leave the
// stream either re-synchronized or terminally failed, and the loop
// always terminates. Valid frames written by the Writer must round-trip
// exactly.
func FuzzRESPParse(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n"))
	f.Add([]byte("PING\r\nPING\r\n"))
	f.Add([]byte("*1\r\n$-1\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("*999999\r\n"))
	f.Add([]byte("$5\r\nab"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1000000\r\nx\r\n"))
	f.Add([]byte(strings.Repeat("z", 9000) + "\r\nPING\r\n"))
	f.Add([]byte("\r\n\r\n*0\r\nINFO\r\n"))

	lim := Limits{MaxArrayLen: 8, MaxBulkLen: 256, MaxInlineLen: 128}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReaderLimits(bytes.NewReader(data), lim)
		for i := 0; i < len(data)+4; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				if IsProtocol(err) {
					continue // recoverable: the parser resynchronized
				}
				return // I/O-terminal (EOF, truncation): loop over
			}
			if len(args) == 0 {
				t.Fatalf("ReadCommand returned an empty command without error")
			}
			if len(args) > lim.MaxArrayLen {
				t.Fatalf("command of %d args exceeds MaxArrayLen %d", len(args), lim.MaxArrayLen)
			}
			for _, a := range args {
				if len(a) > max(lim.MaxBulkLen, lim.MaxInlineLen) {
					t.Fatalf("argument of %d bytes exceeds limits", len(a))
				}
			}
		}
		// A finite input must drain in a bounded number of reads: every
		// iteration either consumes at least one byte or errors out.
		if _, err := r.ReadCommand(); err == nil {
			t.Fatalf("parser did not terminate on %d-byte input", len(data))
		}
	})
}

// FuzzRESPRoundTrip encodes the fuzz input as one bulk argument of a
// command and checks the Writer→Reader round trip preserves it exactly.
func FuzzRESPRoundTrip(f *testing.F) {
	f.Add([]byte("value"))
	f.Add([]byte{})
	f.Add([]byte{0, '\r', '\n', 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.WriteCommand([]byte("SET"), []byte("k"), payload)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		args, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(args) != 3 || string(args[0]) != "SET" || !bytes.Equal(args[2], payload) {
			t.Fatalf("round trip mangled %q into %q", payload, args)
		}
		if _, err := r.ReadCommand(); err != io.EOF {
			t.Fatalf("trailing bytes after round trip: %v", err)
		}
	})
}
