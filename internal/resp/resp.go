// Package resp implements the server and client halves of the RESP
// (REdis Serialization Protocol) wire format cpacached speaks: a Reader
// that parses incoming commands (multibulk arrays and inline lines), a
// Writer that renders replies, and a client-side reply parser used by
// the cpaload driver and the integration tests.
//
// The command parser is written for a network-facing server, so it is
// defensive in two ways the textbook grammar is not:
//
//   - Hard size limits (Limits) bound every allocation a frame can
//     cause. A frame that declares a bulk or array larger than the
//     limit is consumed from the stream in constant memory (the payload
//     is discarded, never buffered) and reported as a *ProtoError, so
//     the connection stays usable — one bad frame costs one error
//     reply, not the session.
//
//   - Malformed input resynchronizes at the next line boundary instead
//     of wedging the stream: a bad length digit, a missing '$' header
//     or a broken CRLF discards through the next '\n' and surfaces a
//     *ProtoError the server answers with "-ERR ...". Only genuine I/O
//     errors (EOF, timeouts) terminate the read loop.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Limits bounds the memory one command frame can make the parser
// allocate. The zero value means DefaultLimits.
type Limits struct {
	// MaxArrayLen caps the element count of a multibulk command.
	MaxArrayLen int
	// MaxBulkLen caps the byte length of one bulk string (so one key or
	// one value).
	MaxBulkLen int
	// MaxInlineLen caps the length of an inline command line.
	MaxInlineLen int
}

// DefaultLimits are generous for a cache workload (1024-element
// pipelines of 64 MiB values fit) while keeping a hostile frame from
// ballooning memory.
var DefaultLimits = Limits{
	MaxArrayLen:  1024,
	MaxBulkLen:   64 << 20,
	MaxInlineLen: 64 << 10,
}

// ProtoError is a protocol-level parse error: the offending frame was
// consumed (the stream is resynchronized) and the connection may
// continue after reporting it. It is distinct from I/O errors, which
// terminate the connection.
type ProtoError struct{ msg string }

func (e *ProtoError) Error() string { return e.msg }

func protoErrf(format string, args ...any) *ProtoError {
	return &ProtoError{msg: fmt.Sprintf(format, args...)}
}

// IsProtocol reports whether err is a recoverable protocol error (the
// connection can keep serving after replying with it).
func IsProtocol(err error) bool {
	var pe *ProtoError
	return errors.As(err, &pe)
}

// Reader parses RESP command frames from a stream.
type Reader struct {
	br  *bufio.Reader
	lim Limits
	// args is the reusable command buffer: element byte slices are
	// freshly allocated per command (the server retains keys and values
	// past the call), but the [][]byte spine is recycled.
	args [][]byte
}

// NewReader wraps r with DefaultLimits.
func NewReader(r io.Reader) *Reader { return NewReaderLimits(r, DefaultLimits) }

// NewReaderLimits wraps r with explicit limits; zero fields fall back
// to DefaultLimits.
func NewReaderLimits(r io.Reader, lim Limits) *Reader {
	if lim.MaxArrayLen <= 0 {
		lim.MaxArrayLen = DefaultLimits.MaxArrayLen
	}
	if lim.MaxBulkLen <= 0 {
		lim.MaxBulkLen = DefaultLimits.MaxBulkLen
	}
	if lim.MaxInlineLen <= 0 {
		lim.MaxInlineLen = DefaultLimits.MaxInlineLen
	}
	return &Reader{br: bufio.NewReader(r), lim: lim}
}

// Buffered reports the bytes already read from the connection but not
// yet parsed — the server flushes its reply buffer only when this
// reaches zero, which is what makes pipelining pay.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// ReadCommand reads the next command as a slice of arguments. Empty
// inline lines are skipped. The returned slices are freshly allocated
// and safe to retain; the outer slice is reused by the next call.
//
// A *ProtoError return means the frame was malformed but consumed: the
// caller should report it to the client and keep reading. Any other
// error is terminal for the connection.
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if b == '*' {
			args, err := r.readMultibulk()
			if err == nil && args == nil {
				continue // "*0": an empty command frame, skipped
			}
			return args, err
		}
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		args, err := r.readInline()
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			continue // bare CRLF keepalive: skip, as redis does
		}
		return args, nil
	}
}

// readLine reads through the next '\n', returning the line without its
// terminator. Lines longer than MaxInlineLen are discarded in constant
// memory and reported as a protocol error.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == nil {
		return trimCRLF(line), nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	// The line overflows bufio's buffer: keep draining to the newline
	// without accumulating it, then report.
	n := len(line)
	for {
		line, err = r.br.ReadSlice('\n')
		n += len(line)
		if err == nil {
			return nil, protoErrf("ERR Protocol error: line too long (%d+ bytes)", n)
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

func trimCRLF(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// readInline parses a space-separated inline command line.
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) > r.lim.MaxInlineLen {
		return nil, protoErrf("ERR Protocol error: inline command of %d bytes exceeds limit %d", len(line), r.lim.MaxInlineLen)
	}
	args := r.args[:0]
	for i := 0; i < len(line); {
		if line[i] == ' ' || line[i] == '\t' {
			i++
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		args = append(args, append([]byte(nil), line[i:j]...))
		i = j
	}
	r.args = args
	return args, nil
}

// parseLen parses a decimal length from a header line body.
func parseLen(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 10 {
		return 0, false
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// readMultibulk parses the elements of an array command whose '*' has
// already been consumed. Oversized declared sizes are drained, not
// buffered; the elements of a too-long array are still parsed (each one
// bounded) so the stream lands on the next frame boundary.
func (r *Reader) readMultibulk() ([][]byte, error) {
	header, err := r.readLine()
	if err != nil {
		return nil, err
	}
	n, ok := parseLen(header)
	if !ok {
		return nil, protoErrf("ERR Protocol error: invalid multibulk length")
	}
	if n < 0 {
		return nil, protoErrf("ERR Protocol error: invalid multibulk length")
	}
	if n == 0 {
		// No elements: the caller's loop skips to the next frame.
		return nil, nil
	}
	overLen := n > r.lim.MaxArrayLen
	args := r.args[:0]
	for i := 0; i < n; i++ {
		elem, err := r.readBulkElem()
		if err != nil {
			r.args = args
			return nil, err
		}
		if !overLen {
			args = append(args, elem)
		}
	}
	r.args = args
	if overLen {
		return nil, protoErrf("ERR Protocol error: multibulk length %d exceeds limit %d", n, r.lim.MaxArrayLen)
	}
	return args, nil
}

// readBulkElem parses one "$<len>\r\n<payload>\r\n" element. Payloads
// above MaxBulkLen are discarded in constant memory and reported.
func (r *Reader) readBulkElem() ([]byte, error) {
	header, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(header) == 0 || header[0] != '$' {
		return nil, protoErrf("ERR Protocol error: expected '$', got %q", headByte(header))
	}
	n, ok := parseLen(header[1:])
	if !ok || n < 0 {
		return nil, protoErrf("ERR Protocol error: invalid bulk length")
	}
	if n > r.lim.MaxBulkLen {
		if err := r.discard(n + 2); err != nil {
			return nil, err
		}
		return nil, protoErrf("ERR Protocol error: bulk length %d exceeds limit %d", n, r.lim.MaxBulkLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return nil, err
	}
	crlf, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if crlf == '\r' {
		if crlf, err = r.br.ReadByte(); err != nil {
			return nil, err
		}
	}
	if crlf != '\n' {
		// The payload did not end where its header promised: discard
		// through the next newline so the stream realigns on a frame
		// boundary, then report.
		if _, err := r.br.ReadSlice('\n'); err != nil && err != bufio.ErrBufferFull {
			return nil, err
		}
		return nil, protoErrf("ERR Protocol error: bulk string missing CRLF terminator")
	}
	return payload, nil
}

func headByte(b []byte) byte {
	if len(b) == 0 {
		return '\n'
	}
	return b[0]
}

// discard drains exactly n bytes from the stream without buffering them.
func (r *Reader) discard(n int) error {
	for n > 0 {
		k, err := r.br.Discard(min(n, 1<<20))
		n -= k
		if err != nil {
			return err
		}
	}
	return nil
}

// Writer renders RESP replies into a buffered stream. Methods never
// return errors; the first write failure is latched and surfaced by
// Flush, which is how a pipelined server wants it — render the whole
// batch, check once.
type Writer struct {
	bw  *bufio.Writer
	num [24]byte // scratch for integer rendering
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriter(w)} }

// Flush writes out everything buffered and returns the first error the
// underlying stream reported.
func (w *Writer) Flush() error { return w.bw.Flush() }

// SimpleString writes "+s\r\n".
func (w *Writer) SimpleString(s string) {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// Error writes "-msg\r\n". The message must already carry its ERR/
// WRONGTYPE-style prefix.
func (w *Writer) Error(msg string) {
	w.bw.WriteByte('-')
	w.bw.WriteString(msg)
	w.bw.WriteString("\r\n")
}

// Int writes ":n\r\n".
func (w *Writer) Int(n int64) {
	w.bw.WriteByte(':')
	w.bw.Write(strconv.AppendInt(w.num[:0], n, 10))
	w.bw.WriteString("\r\n")
}

// Bulk writes "$len\r\nb\r\n".
func (w *Writer) Bulk(b []byte) {
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(len(b)), 10))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

// BulkString writes s as a bulk string.
func (w *Writer) BulkString(s string) {
	w.bw.WriteByte('$')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(len(s)), 10))
	w.bw.WriteString("\r\n")
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// Null writes the null bulk reply "$-1\r\n" (a GET miss).
func (w *Writer) Null() { w.bw.WriteString("$-1\r\n") }

// ArrayHeader writes "*n\r\n"; the caller then writes n elements.
func (w *Writer) ArrayHeader(n int) {
	w.bw.WriteByte('*')
	w.bw.Write(strconv.AppendInt(w.num[:0], int64(n), 10))
	w.bw.WriteString("\r\n")
}
