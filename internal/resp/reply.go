package resp

import (
	"fmt"
	"io"
)

// Client-side reply parsing, used by the cpaload driver and the server
// integration tests. Replies are the five RESP2 types; nested arrays
// parse recursively.

// Reply kinds.
const (
	KindSimple = '+'
	KindError  = '-'
	KindInt    = ':'
	KindBulk   = '$'
	KindArray  = '*'
)

// Reply is one parsed server reply.
type Reply struct {
	Kind  byte
	Str   []byte  // simple string, error message, or bulk payload
	Int   int64   // integer reply
	Null  bool    // null bulk ($-1) or null array (*-1)
	Array []Reply // array elements
}

// IsErr reports whether the reply is a RESP error.
func (r Reply) IsErr() bool { return r.Kind == KindError }

// ReadReply parses one reply from the stream. Unlike ReadCommand it has
// no resynchronization: a malformed reply is a client-fatal error.
func (r *Reader) ReadReply() (Reply, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	line, err := r.readLine()
	if err != nil {
		return Reply{}, err
	}
	switch b {
	case KindSimple, KindError:
		return Reply{Kind: b, Str: append([]byte(nil), line...)}, nil
	case KindInt:
		n, ok := parseLen(line)
		if !ok {
			return Reply{}, fmt.Errorf("resp: malformed integer reply %q", line)
		}
		return Reply{Kind: b, Int: int64(n)}, nil
	case KindBulk:
		n, ok := parseLen(line)
		if !ok {
			return Reply{}, fmt.Errorf("resp: malformed bulk header %q", line)
		}
		if n < 0 {
			return Reply{Kind: b, Null: true}, nil
		}
		if n > r.lim.MaxBulkLen {
			return Reply{}, fmt.Errorf("resp: bulk reply of %d bytes exceeds limit", n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r.br, payload); err != nil {
			return Reply{}, err
		}
		if tail, err := r.readLine(); err != nil {
			return Reply{}, err
		} else if len(tail) != 0 {
			return Reply{}, fmt.Errorf("resp: bulk reply not CRLF-terminated")
		}
		return Reply{Kind: b, Str: payload}, nil
	case KindArray:
		n, ok := parseLen(line)
		if !ok {
			return Reply{}, fmt.Errorf("resp: malformed array header %q", line)
		}
		if n < 0 {
			return Reply{Kind: b, Null: true}, nil
		}
		if n > r.lim.MaxArrayLen {
			return Reply{}, fmt.Errorf("resp: array reply of %d elements exceeds limit", n)
		}
		elems := make([]Reply, n)
		for i := range elems {
			if elems[i], err = r.ReadReply(); err != nil {
				return Reply{}, err
			}
		}
		return Reply{Kind: b, Array: elems}, nil
	default:
		return Reply{}, fmt.Errorf("resp: unknown reply type %q", b)
	}
}

// WriteCommand renders a command as a multibulk array — the client side
// of ReadCommand.
func (w *Writer) WriteCommand(args ...[]byte) {
	w.ArrayHeader(len(args))
	for _, a := range args {
		w.Bulk(a)
	}
}

// WriteCommandString is WriteCommand over string arguments.
func (w *Writer) WriteCommandString(args ...string) {
	w.ArrayHeader(len(args))
	for _, a := range args {
		w.BulkString(a)
	}
}
