package resp

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestLimitBoundaries pins the limit comparisons as inclusive: a frame
// exactly at a cap parses, one byte over is refused. An off-by-one here
// either rejects legal traffic or lets an attacker buy one count more
// memory than configured.
func TestLimitBoundaries(t *testing.T) {
	lim := Limits{MaxArrayLen: 4, MaxBulkLen: 16, MaxInlineLen: 64}

	// Array of exactly MaxArrayLen elements.
	atArray := "*4\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n$1\r\nd\r\n"
	got := readAllCommands(t, atArray, lim)
	if len(got) != 1 || got[0].err != nil || len(got[0].args) != 4 {
		t.Fatalf("array at limit: %+v", got)
	}

	// Bulk of exactly MaxBulkLen bytes.
	atBulk := fmt.Sprintf("*2\r\n$3\r\nSET\r\n$16\r\n%s\r\n", strings.Repeat("v", 16))
	got = readAllCommands(t, atBulk, lim)
	if len(got) != 1 || got[0].err != nil || got[0].args[1] != strings.Repeat("v", 16) {
		t.Fatalf("bulk at limit: %+v", got)
	}

	// Inline line of exactly MaxInlineLen payload bytes (the limit is
	// applied after the CRLF is trimmed).
	atInline := "PING " + strings.Repeat("x", 64-len("PING ")) + "\r\n"
	got = readAllCommands(t, atInline, lim)
	if len(got) != 1 || got[0].err != nil {
		t.Fatalf("inline at limit: %+v", got)
	}

	// One over each cap is a protocol error that resyncs to the next
	// command.
	for name, input := range map[string]string{
		"array":  "*5\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n$1\r\nd\r\n$1\r\ne\r\nPING\r\n",
		"bulk":   fmt.Sprintf("*2\r\n$3\r\nSET\r\n$17\r\n%s\r\nPING\r\n", strings.Repeat("v", 17)),
		"inline": strings.Repeat("x", 65) + "\r\nPING\r\n",
	} {
		got := readAllCommands(t, input, lim)
		if len(got) != 2 || got[0].err == nil || got[1].err != nil || got[1].args[0] != "PING" {
			t.Fatalf("%s one over limit: %+v", name, got)
		}
	}
}

// TestHugeDeclaredBulkTruncated drives the constant-memory discard path
// into EOF: an attacker declares a bulk far past the cap but hangs up
// mid-discard. The reader must report end-of-stream, not block or
// buffer the declared size.
func TestHugeDeclaredBulkTruncated(t *testing.T) {
	lim := Limits{MaxArrayLen: 4, MaxBulkLen: 16, MaxInlineLen: 64}
	input := "*2\r\n$3\r\nGET\r\n$1000000\r\n" + strings.Repeat("z", 100) // hangs up 999900 bytes early
	r := NewReaderLimits(strings.NewReader(input), lim)
	for i := 0; i < 10; i++ {
		_, err := r.ReadCommand()
		if err == nil {
			t.Fatal("truncated oversized bulk parsed as a command")
		}
		if IsProtocol(err) {
			continue // the over-limit report; the discard continues next call
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("want EOF-class error, got %v", err)
		}
		return
	}
	t.Fatal("reader never reached end-of-stream on a truncated discard")
}

// TestTruncationAtEveryPosition cuts a valid two-command stream at
// every byte offset: parsing must never panic, never fabricate a
// command that was not fully received, and must report a terminal
// (non-protocol) error at or before the cut.
func TestTruncationAtEveryPosition(t *testing.T) {
	lim := Limits{MaxArrayLen: 4, MaxBulkLen: 16, MaxInlineLen: 64}
	full := "*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$5\r\nhello\r\n*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n"
	for cut := 0; cut < len(full); cut++ {
		r := NewReaderLimits(strings.NewReader(full[:cut]), lim)
		var cmds int
		for {
			args, err := r.ReadCommand()
			if err == nil {
				cmds++
				if cmds > 2 {
					t.Fatalf("cut=%d: more commands than the stream holds", cut)
				}
				// Any surfaced command must be one of the two complete ones.
				cmd := string(args[0])
				if cmd != "SET" && cmd != "GET" {
					t.Fatalf("cut=%d: fabricated command %q", cut, cmd)
				}
				continue
			}
			if IsProtocol(err) {
				t.Fatalf("cut=%d: truncation misreported as protocol error %v", cut, err)
			}
			break
		}
		// A cut inside the first frame must surface zero commands; a cut
		// inside the second, exactly one.
		const firstLen = len("*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$5\r\nhello\r\n")
		wantCmds := 0
		if cut >= firstLen {
			wantCmds = 1
		}
		if cmds != wantCmds {
			t.Fatalf("cut=%d: surfaced %d commands, want %d", cut, cmds, wantCmds)
		}
	}
}

// TestReadReplyTruncated does the same for the client-side reply
// parser across every reply kind.
func TestReadReplyTruncated(t *testing.T) {
	replies := []string{
		"+OK\r\n",
		"-ERR boom\r\n",
		":42\r\n",
		"$5\r\nhello\r\n",
		"$-1\r\n",
		"*2\r\n$1\r\na\r\n:7\r\n",
		"*-1\r\n",
	}
	for _, full := range replies {
		// The complete reply parses.
		if _, err := NewReader(strings.NewReader(full)).ReadReply(); err != nil {
			t.Fatalf("%q: %v", full, err)
		}
		// Every strict prefix fails with an EOF-class error, no panic.
		for cut := 0; cut < len(full); cut++ {
			_, err := NewReader(strings.NewReader(full[:cut])).ReadReply()
			if err == nil {
				t.Fatalf("%q cut at %d parsed", full, cut)
			}
		}
	}
}

// shortWriter accepts at most cap bytes total, then reports a write
// error — the shape of a peer that hung up mid-reply.
type shortWriter struct {
	cap     int
	written int
}

var errConnGone = errors.New("connection reset by peer")

func (w *shortWriter) Write(p []byte) (int, error) {
	if w.written >= w.cap {
		return 0, errConnGone
	}
	n := len(p)
	if w.written+n > w.cap {
		n = w.cap - w.written
		w.written += n
		return n, errConnGone
	}
	w.written += n
	return n, nil
}

// stutterWriter reports fewer bytes than given with a nil error —
// a buggy transport. bufio must turn that into io.ErrShortWrite
// rather than silently dropping reply bytes.
type stutterWriter struct{}

func (stutterWriter) Write(p []byte) (int, error) {
	if len(p) > 1 {
		return len(p) / 2, nil
	}
	return len(p), nil
}

func TestWriterShortWrite(t *testing.T) {
	// Error mid-flush: Flush surfaces it, and the writer stays failed —
	// later flushes must re-report rather than pretend success.
	w := NewWriter(&shortWriter{cap: 10})
	for i := 0; i < 100; i++ {
		w.Bulk([]byte("0123456789abcdef"))
	}
	if err := w.Flush(); !errors.Is(err, errConnGone) {
		t.Fatalf("Flush = %v, want errConnGone", err)
	}
	w.SimpleString("OK")
	if err := w.Flush(); err == nil {
		t.Fatal("writer forgot its error after a failed flush")
	}

	// n < len(p) with nil error: the bufio layer must flag the lie.
	w2 := NewWriter(stutterWriter{})
	w2.Bulk(make([]byte, 8192)) // larger than the internal buffer forces real writes
	if err := w2.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Flush = %v, want io.ErrShortWrite", err)
	}
}
