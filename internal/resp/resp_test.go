package resp

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// readAll drains every command from input, recording each result as
// either its argument list or its error, so tests can assert on whole
// pipelined conversations including recovery after protocol errors.
type readResult struct {
	args []string
	err  error
}

func readAllCommands(t *testing.T, input string, lim Limits) []readResult {
	t.Helper()
	r := NewReaderLimits(strings.NewReader(input), lim)
	var out []readResult
	for {
		args, err := r.ReadCommand()
		if err == io.EOF {
			return out
		}
		if err != nil {
			if !IsProtocol(err) {
				if err != io.ErrUnexpectedEOF {
					t.Fatalf("terminal non-protocol error: %v", err)
				}
				return out
			}
			out = append(out, readResult{err: err})
			continue
		}
		strs := make([]string, len(args))
		for i, a := range args {
			strs[i] = string(a)
		}
		out = append(out, readResult{args: strs})
	}
}

// TestReadCommandConformance is the table-driven wire conformance
// suite: every case is one byte stream and the exact sequence of
// commands and protocol errors it must parse into.
func TestReadCommandConformance(t *testing.T) {
	lim := Limits{MaxArrayLen: 4, MaxBulkLen: 16, MaxInlineLen: 64}
	cases := []struct {
		name  string
		input string
		want  []readResult // err non-nil means "a protocol error here"
	}{
		{
			name:  "multibulk get",
			input: "*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n",
			want:  []readResult{{args: []string{"GET", "foo"}}},
		},
		{
			name:  "multibulk with binary payload",
			input: "*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$4\r\n\x00\r\n\xff\r\n",
			want:  []readResult{{args: []string{"SET", "k1", "\x00\r\n\xff"}}},
		},
		{
			name:  "empty bulk argument",
			input: "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$0\r\n\r\n",
			want:  []readResult{{args: []string{"SET", "k", ""}}},
		},
		{
			name:  "inline command",
			input: "PING\r\n",
			want:  []readResult{{args: []string{"PING"}}},
		},
		{
			name:  "inline with args and extra spaces",
			input: "SET  k   v\r\n",
			want:  []readResult{{args: []string{"SET", "k", "v"}}},
		},
		{
			name:  "inline LF only",
			input: "PING\n",
			want:  []readResult{{args: []string{"PING"}}},
		},
		{
			name:  "blank lines skipped",
			input: "\r\n\r\nPING\r\n",
			want:  []readResult{{args: []string{"PING"}}},
		},
		{
			name:  "pipelined batch",
			input: "*2\r\n$3\r\nGET\r\n$1\r\na\r\n*2\r\n$3\r\nGET\r\n$1\r\nb\r\nPING\r\n",
			want: []readResult{
				{args: []string{"GET", "a"}},
				{args: []string{"GET", "b"}},
				{args: []string{"PING"}},
			},
		},
		{
			name:  "empty array skipped",
			input: "*0\r\nPING\r\n",
			want:  []readResult{{args: []string{"PING"}}},
		},
		{
			name:  "oversized array drains then recovers",
			input: "*5\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n$1\r\nd\r\n$1\r\ne\r\nPING\r\n",
			want:  []readResult{{err: errAny}, {args: []string{"PING"}}},
		},
		{
			name:  "oversized bulk drains then recovers",
			input: "*2\r\n$3\r\nGET\r\n$20\r\n01234567890123456789\r\nPING\r\n",
			want:  []readResult{{err: errAny}, {args: []string{"PING"}}},
		},
		{
			name:  "negative multibulk is an error",
			input: "*-1\r\nPING\r\n",
			want:  []readResult{{err: errAny}, {args: []string{"PING"}}},
		},
		{
			name:  "garbage multibulk count resyncs at line",
			input: "*xyz\r\nPING\r\n",
			want:  []readResult{{err: errAny}, {args: []string{"PING"}}},
		},
		{
			name:  "missing bulk header resyncs at line",
			input: "*1\r\n:5\r\nPING\r\n",
			want:  []readResult{{err: errAny}, {args: []string{"PING"}}},
		},
		{
			name:  "negative bulk length is an error",
			input: "*1\r\n$-1\r\nPING\r\n",
			want:  []readResult{{err: errAny}, {args: []string{"PING"}}},
		},
		{
			name:  "payload longer than declared resyncs",
			input: "*2\r\n$3\r\nGET\r\n$2\r\nabcdef\r\nPING\r\n",
			want:  []readResult{{err: errAny}, {args: []string{"PING"}}},
		},
		{
			name:  "inline over the limit is an error",
			input: strings.Repeat("y", 100) + "\r\nPING\r\n",
			want:  []readResult{{err: errAny}, {args: []string{"PING"}}},
		},
		{
			name:  "truncated frame ends the stream",
			input: "*2\r\n$3\r\nGET\r\n$3\r\nab",
			want:  nil, // io.ErrUnexpectedEOF, no command surfaced
		},
		{
			name:  "truncated header ends the stream",
			input: "*2\r\n$3\r\nGE",
			want:  nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := readAllCommands(t, tc.input, lim)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d results, want %d: %+v", len(got), len(tc.want), got)
			}
			for i, w := range tc.want {
				if w.err != nil {
					if got[i].err == nil {
						t.Fatalf("result %d: got command %v, want protocol error", i, got[i].args)
					}
					continue
				}
				if got[i].err != nil {
					t.Fatalf("result %d: got error %v, want %v", i, got[i].err, w.args)
				}
				if len(got[i].args) != len(w.args) {
					t.Fatalf("result %d: got %v, want %v", i, got[i].args, w.args)
				}
				for j := range w.args {
					if got[i].args[j] != w.args[j] {
						t.Fatalf("result %d arg %d: got %q, want %q", i, j, got[i].args[j], w.args[j])
					}
				}
			}
		})
	}
}

// errAny marks "any protocol error" in the conformance table.
var errAny = &ProtoError{msg: "any"}

func TestOversizedInlineRecovers(t *testing.T) {
	lim := Limits{MaxArrayLen: 4, MaxBulkLen: 16, MaxInlineLen: 64}
	input := strings.Repeat("x", 10000) + "\r\nPING\r\n"
	got := readAllCommands(t, input, lim)
	// bufio's 4096 buffer forces the long-line drain path; the stream
	// must land exactly on the PING that follows.
	if len(got) != 2 || got[0].err == nil || got[1].err != nil || got[1].args[0] != "PING" {
		t.Fatalf("long inline line did not resync: %+v", got)
	}
}

func TestWriterRendersReplies(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SimpleString("OK")
	w.Error("ERR boom")
	w.Int(-42)
	w.Bulk([]byte("hi"))
	w.Null()
	w.ArrayHeader(2)
	w.BulkString("a")
	w.BulkString("")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR boom\r\n:-42\r\n$2\r\nhi\r\n$-1\r\n*2\r\n$1\r\na\r\n$0\r\n\r\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SimpleString("PONG")
	w.Error("ERR nope")
	w.Int(7)
	w.Bulk([]byte("value"))
	w.Null()
	w.ArrayHeader(3)
	w.Bulk([]byte("x"))
	w.Null()
	w.Int(-2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if rep, err := r.ReadReply(); err != nil || rep.Kind != KindSimple || string(rep.Str) != "PONG" {
		t.Fatalf("simple: %+v %v", rep, err)
	}
	if rep, err := r.ReadReply(); err != nil || !rep.IsErr() || string(rep.Str) != "ERR nope" {
		t.Fatalf("error: %+v %v", rep, err)
	}
	if rep, err := r.ReadReply(); err != nil || rep.Kind != KindInt || rep.Int != 7 {
		t.Fatalf("int: %+v %v", rep, err)
	}
	if rep, err := r.ReadReply(); err != nil || rep.Kind != KindBulk || string(rep.Str) != "value" {
		t.Fatalf("bulk: %+v %v", rep, err)
	}
	if rep, err := r.ReadReply(); err != nil || !rep.Null {
		t.Fatalf("null: %+v %v", rep, err)
	}
	rep, err := r.ReadReply()
	if err != nil || rep.Kind != KindArray || len(rep.Array) != 3 {
		t.Fatalf("array: %+v %v", rep, err)
	}
	if string(rep.Array[0].Str) != "x" || !rep.Array[1].Null || rep.Array[2].Int != -2 {
		t.Fatalf("array elems: %+v", rep.Array)
	}
}

func TestWriteCommandParsesBack(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteCommandString("SET", "key", "value with spaces")
	w.WriteCommand([]byte("GET"), []byte{0, 1, 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	args, err := r.ReadCommand()
	if err != nil || len(args) != 3 || string(args[2]) != "value with spaces" {
		t.Fatalf("first: %q %v", args, err)
	}
	args, err = r.ReadCommand()
	if err != nil || len(args) != 2 || !bytes.Equal(args[1], []byte{0, 1, 2}) {
		t.Fatalf("second: %q %v", args, err)
	}
}
