// Quickstart: simulate a 2-core CMP sharing a 1 MB L2 under the paper's
// M-0.75N configuration (global replacement masks + NRU replacement with
// the 0.75-scaled eSDH profiling) and print what the partitioning system
// decided.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
	"repro/pkg/cpapart"
	"repro/pkg/plru"
)

func main() {
	// A cache-hungry program (mcf) against a compute-bound one (crafty).
	w := workload.Workload{Name: "quickstart", Benchmarks: []string{"mcf", "crafty"}}

	// The CPA configuration, by paper acronym. Interval and sampling are
	// scaled down to match the short run.
	cpaCfg, err := core.ParseAcronym("M-0.75N")
	if err != nil {
		log.Fatal(err)
	}
	cpaCfg.Interval = 100_000 // cycles between repartitions
	cpaCfg.SampleRate = 16    // ATD samples 1 of every 16 sets

	sys, err := cmp.New(cmp.Config{
		Workload: w,
		L2: cache.Config{
			Name: "L2", SizeBytes: 1 << 20, LineBytes: 128, Ways: 16,
			Policy: plru.NRU, Cores: w.Threads(), Seed: 1,
		},
		CPA:      &cpaCfg,
		Params:   cpu.DefaultParams(),
		L1:       cpu.DefaultL1Config(128),
		MaxInsts: 500_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Watch the MinMisses decisions as the eSDH profile matures.
	sys.CPA().OnRepartition = func(cycle uint64, alloc cpapart.Allocation) {
		fmt.Printf("  cycle %8d: ways = %v\n", cycle, alloc)
	}

	fmt.Println("repartition decisions (mcf, crafty):")
	res := sys.Run()

	fmt.Println("\nper-thread results:")
	for _, c := range res.PerCore {
		fmt.Printf("  %-8s IPC %.3f, %d L2 accesses, %d L2 misses\n",
			c.Benchmark, c.IPC, c.Stats.L2Accesses, c.Stats.L2Misses)
	}
	fmt.Printf("\nthroughput %.3f, %d repartitions, final allocation %v\n",
		res.Throughput(), res.Repartitions, sys.CPA().Allocation())
}
