// partition-explorer visualizes what the profiling logic sees and what
// the partitioner does with it: it runs a workload, prints each thread's
// miss-rate-versus-ways curve (from the live eSDH), and shows how the
// MinMisses allocation evolves across repartition intervals — including
// the buddy-rounded allocations the BT enforcement is restricted to.
//
//	go run ./examples/partition-explorer [workload] [acronym]
//
// Defaults: workload 2T_15 (lucas + mcf), acronym M-L.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
	"repro/pkg/cpapart"
)

func main() {
	wlName, acr := "2T_15", "M-L"
	if len(os.Args) > 1 {
		wlName = os.Args[1]
	}
	if len(os.Args) > 2 {
		acr = os.Args[2]
	}
	w, err := workload.Lookup(wlName)
	if err != nil {
		log.Fatal(err)
	}
	cpaCfg, err := core.ParseAcronym(acr)
	if err != nil {
		log.Fatal(err)
	}
	cpaCfg.Interval = 150_000
	cpaCfg.SampleRate = 8

	sys, err := cmp.New(cmp.Config{
		Workload: w,
		L2: cache.Config{
			Name: "L2", SizeBytes: 1 << 20, LineBytes: 128, Ways: 16,
			Policy: cpaCfg.Policy, Cores: w.Threads(), Seed: 1,
		},
		CPA:      &cpaCfg,
		Params:   cpu.DefaultParams(),
		L1:       cpu.DefaultL1Config(128),
		MaxInsts: 900_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s (%s), config %s\n\n", w.Name,
		strings.Join(w.Benchmarks, " + "), acr)
	fmt.Println("allocation trace (one row per repartition):")
	history := make([]cpapart.Allocation, 0, 16)
	sys.CPA().OnRepartition = func(cycle uint64, alloc cpapart.Allocation) {
		history = append(history, alloc)
		fmt.Printf("  @%9d cycles: %v %s\n", cycle, alloc, allocBar(alloc))
	}
	res := sys.Run()

	fmt.Println("\nfinal (e)SDH miss curves (miss ratio at w ways):")
	for i, mon := range sys.CPA().Monitors() {
		sdh := mon.SDH()
		total := float64(sdh.Total())
		var sb strings.Builder
		fmt.Fprintf(&sb, "  %-9s", w.Benchmarks[i])
		for ways := 1; ways <= 16; ways++ {
			if total == 0 {
				sb.WriteString("   -  ")
				continue
			}
			fmt.Fprintf(&sb, " %4.2f", float64(sdh.Misses(ways))/total)
		}
		fmt.Println(sb.String())
	}
	fmt.Println("            (columns: 1..16 ways)")

	fmt.Printf("\nthroughput %.3f after %d repartitions\n", res.Throughput(), res.Repartitions)
	if len(history) > 0 {
		fmt.Printf("final allocation: %v\n", history[len(history)-1])
	}
}

// allocBar renders an allocation as a 16-character way map (a=core 0,
// b=core 1, ...).
func allocBar(alloc cpapart.Allocation) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for core, ways := range alloc {
		for i := 0; i < ways; i++ {
			sb.WriteByte(byte('a' + core))
		}
	}
	sb.WriteByte(']')
	return sb.String()
}
