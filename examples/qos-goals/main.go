// qos-goals contrasts the partitioner's optimization goals — the paper's
// MinMisses plus the FlexDCP-style extensions (throughput, fairness, QoS)
// — on one workload where they genuinely disagree: a cache-hungry thread
// (art) against a mid-size thread (twolf).
//
//	go run ./examples/qos-goals
//
// MinMisses/throughput favor whoever converts ways into the most hits;
// fairness equalizes slowdowns; QoS pins thread 0's slowdown under a
// bound no matter the cost to others.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments/sched"
	"repro/internal/textplot"
	"repro/internal/workload"
	"repro/pkg/plru"
)

func main() {
	w := workload.Workload{Name: "qos-demo", Benchmarks: []string{"art", "twolf"}}

	type variant struct {
		label string
		goal  core.Goal
		qos   float64
	}
	variants := []variant{
		{"MinMisses (paper)", core.GoalMinMisses, 0},
		{"MaxThroughput", core.GoalThroughput, 0},
		{"FairSlowdown", core.GoalFair, 0},
		{"QoS art<=1.1x", core.GoalQoS, 1.1},
	}

	// Every simulation — the two isolation baselines and the four goal
	// variants — is independent; run them all through one bounded pool
	// and assemble the table in display order.
	isoIPC := make([]float64, len(w.Benchmarks))
	goalRes := make([]cmp.Results, len(variants))
	_ = sched.ForEach(context.Background(), sched.NewPool(0),
		len(w.Benchmarks)+len(variants), func(i int) error {
			if i < len(w.Benchmarks) {
				isoIPC[i] = runOne(workload.Workload{Name: "iso", Benchmarks: []string{w.Benchmarks[i]}},
					core.GoalMinMisses, 0, false).PerCore[0].IPC
			} else {
				v := variants[i-len(w.Benchmarks)]
				goalRes[i-len(w.Benchmarks)] = runOne(w, v.goal, v.qos, true)
			}
			return nil
		})

	rows := make([][]string, 0, len(variants))
	for i, v := range variants {
		res := goalRes[i]
		slow := func(i int) float64 {
			return isoIPC[i] / res.PerCore[i].IPC
		}
		rows = append(rows, []string{
			v.label,
			fmt.Sprintf("%.3f", res.Throughput()),
			fmt.Sprintf("%.2fx", slow(0)),
			fmt.Sprintf("%.2fx", slow(1)),
		})
	}
	fmt.Printf("workload: %v (isolation IPCs: art %.3f, twolf %.3f)\n\n",
		w.Benchmarks, isoIPC[0], isoIPC[1])
	fmt.Print(textplot.Table(
		[]string{"goal", "throughput", "art slowdown", "twolf slowdown"}, rows))
	fmt.Println("\nLower slowdown = closer to running alone. The QoS goal buys")
	fmt.Println("art's bound with twolf's ways; fairness balances the two.")
}

func runOne(w workload.Workload, goal core.Goal, qos float64, partitioned bool) cmp.Results {
	cfg := cmp.Config{
		Workload: w,
		L2: cache.Config{
			Name: "L2", SizeBytes: 512 << 10, LineBytes: 128, Ways: 16,
			Policy: plru.LRU, Cores: w.Threads(), Seed: 1,
		},
		Params:   cpu.DefaultParams(),
		L1:       cpu.DefaultL1Config(128),
		MaxInsts: 900_000,
	}
	if partitioned {
		cpaCfg, err := core.ParseAcronym("M-L")
		if err != nil {
			log.Fatal(err)
		}
		cpaCfg.Interval = 100_000
		cpaCfg.SampleRate = 8
		cpaCfg.Goal = goal
		cpaCfg.QoSTarget = qos
		cfg.CPA = &cpaCfg
	}
	sys, err := cmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run()
}
