// Tenant-cache: an HTTP service in which N tenants share one
// cpacache.Cache, each with a way quota enforced through the paper's
// replacement masks, and an admin endpoint that rebalances the quotas
// online from the observed per-tenant hit curves (pkg/cpapart's MinMisses
// over UMON-style profiles).
//
// Run the demo workload (no network needed):
//
//	go run ./examples/tenant-cache -demo
//
// Or serve:
//
//	go run ./examples/tenant-cache -listen :8080
//	curl 'localhost:8080/get?tenant=0&key=user:17'
//	curl -X PUT 'localhost:8080/set?tenant=0&key=user:17&value=alice'
//	curl 'localhost:8080/stats'
//	curl -X POST 'localhost:8080/rebalance'
//
// The demo drives a cache-hungry tenant (a wide key loop), a medium
// service and a churning log-ingest tenant (never-repeating keys) against
// even initial quotas, prints each tenant's hit rate, rebalances, and
// prints the shifted hit rates: the hungry tenant's rate rises because
// MinMisses hands it the ways the churner provably cannot use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"repro/pkg/cpacache"
	"repro/pkg/plru"
)

const tenants = 3

func newCache() (*cpacache.Cache[string, string], error) {
	return cpacache.New[string, string](
		cpacache.WithShards(4),
		cpacache.WithSets(64),
		cpacache.WithWays(16),
		cpacache.WithPolicy(plru.LRU),
		cpacache.WithPartitions(tenants),
		cpacache.WithProfileSampling(1),
	)
}

func main() {
	var (
		listen = flag.String("listen", "", "address to serve HTTP on (e.g. :8080)")
		demo   = flag.Bool("demo", false, "run the synthetic 3-tenant workload and exit")
	)
	flag.Parse()

	c, err := newCache()
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *demo:
		runDemo(c)
	case *listen != "":
		log.Printf("tenant-cache serving on %s (%d tenants, %d ways)", *listen, tenants, c.Ways())
		log.Fatal(http.ListenAndServe(*listen, newMux(c)))
	default:
		fmt.Println("nothing to do: pass -demo or -listen :8080 (see -h)")
	}
}

// newMux wires the cache into a small JSON-over-HTTP API. Every data
// endpoint takes a tenant id so the server can enforce per-tenant quotas;
// a production deployment would derive the tenant from auth instead.
func newMux(c *cpacache.Cache[string, string]) *http.ServeMux {
	mux := http.NewServeMux()

	tenantOf := func(r *http.Request) (int, error) {
		t, err := strconv.Atoi(r.URL.Query().Get("tenant"))
		if err != nil || t < 0 || t >= tenants {
			return 0, fmt.Errorf("tenant must be in [0,%d)", tenants)
		}
		return t, nil
	}

	mux.HandleFunc("GET /get", func(w http.ResponseWriter, r *http.Request) {
		t, err := tenantOf(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, ok := c.GetTenant(t, r.URL.Query().Get("key"))
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		fmt.Fprintln(w, v)
	})

	mux.HandleFunc("PUT /set", func(w http.ResponseWriter, r *http.Request) {
		t, err := tenantOf(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := r.URL.Query()
		c.SetTenant(t, q.Get("key"), q.Get("value"))
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		type tenantReport struct {
			Quota   int     `json:"quota_ways"`
			Hits    uint64  `json:"hits"`
			Misses  uint64  `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		}
		quotas, stats := c.Quotas(), c.Stats()
		out := make([]tenantReport, tenants)
		for t := range out {
			out[t] = tenantReport{
				Quota: quotas[t], Hits: stats[t].Hits, Misses: stats[t].Misses,
				HitRate: stats[t].HitRate(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})

	mux.HandleFunc("POST /rebalance", func(w http.ResponseWriter, r *http.Request) {
		quotas, err := c.Rebalance()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"quotas": quotas})
	})

	return mux
}

// tenantWorkload is one tenant's synthetic traffic. Looping tenants cycle
// over `keys` distinct keys — the classic worst case for an undersized LRU
// partition (hit rate falls off a cliff when the quota is below the loop
// length). A churning tenant writes `keys` never-repeating keys per round
// (log ingest): it gains nothing from cache space but keeps every set
// full, so without quotas its evictions shred its neighbors.
type tenantWorkload struct {
	name  string
	keys  int
	churn bool
}

var demoWorkloads = [tenants]tenantWorkload{
	// The scanner's loop (2000 keys ≈ 7.8 per set) thrashes inside its
	// even-split quota (6 of 16 ways) but fits the share MinMisses hands
	// it once the curves show the churner can't use cache at all.
	{name: "scanner (hungry)", keys: 2000},
	{name: "service (medium)", keys: 200},
	{name: "logger (churn)", keys: 500, churn: true},
}

// churnCounter makes the logger's keys unique across rounds and intervals.
var churnCounter int

// driveBatch is the per-round scratch drive reuses: each tenant's traffic
// goes through GetBatch, and only the keys that missed are re-inserted
// with SetBatch — one shard lock per shard per batch instead of one per
// key, which is how a high-throughput caller should feed cpacache.
var driveBatch struct {
	keys, vals, missK, missV []string
	oks                      []bool
}

// drive runs `rounds` passes of every tenant's traffic and returns each
// tenant's hit rate over the interval (stats deltas, not lifetime).
func drive(c *cpacache.Cache[string, string], rounds int) [tenants]float64 {
	const batch = 128
	b := &driveBatch
	if cap(b.keys) < batch {
		b.keys = make([]string, 0, batch)
		b.vals = make([]string, batch)
		b.oks = make([]bool, batch)
		b.missK = make([]string, 0, batch)
		b.missV = make([]string, 0, batch)
	}
	flush := func(t int) {
		if len(b.keys) == 0 {
			return
		}
		c.GetBatch(t, b.keys, b.vals, b.oks)
		b.missK, b.missV = b.missK[:0], b.missV[:0]
		for i, ok := range b.oks[:len(b.keys)] {
			if !ok {
				b.missK = append(b.missK, b.keys[i])
				b.missV = append(b.missV, b.keys[i])
			}
		}
		c.SetBatch(t, b.missK, b.missV)
		b.keys = b.keys[:0]
	}
	before := c.Stats()
	for r := 0; r < rounds; r++ {
		for t, wl := range demoWorkloads {
			for k := 0; k < wl.keys; k++ {
				var key string
				if wl.churn {
					churnCounter++
					key = fmt.Sprintf("t%d:%d", t, churnCounter)
				} else {
					key = fmt.Sprintf("t%d:%d", t, k)
				}
				b.keys = append(b.keys, key)
				if len(b.keys) == batch {
					flush(t)
				}
			}
			flush(t)
		}
	}
	after := c.Stats()
	var rates [tenants]float64
	for t := range rates {
		hits := after[t].Hits - before[t].Hits
		total := hits + after[t].Misses - before[t].Misses
		if total > 0 {
			rates[t] = float64(hits) / float64(total)
		}
	}
	return rates
}

func runDemo(c *cpacache.Cache[string, string]) {
	fmt.Printf("capacity %d entries = %d shards x %d sets x %d ways; %d tenants\n\n",
		c.Capacity(), c.Shards(), c.Sets(), c.Ways(), tenants)

	fmt.Println("== interval 1: even quotas", c.Quotas(), "==")
	rates := drive(c, 30)
	for t, wl := range demoWorkloads {
		fmt.Printf("  %-18s %5d keys  hit rate %.3f\n", wl.name, wl.keys, rates[t])
	}

	quotas, err := c.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== rebalanced from observed hit curves to", quotas, "==")
	rates = drive(c, 30)
	for t, wl := range demoWorkloads {
		fmt.Printf("  %-18s %5d keys  hit rate %.3f\n", wl.name, wl.keys, rates[t])
	}
	fmt.Println("\nways moved toward the tenant whose miss curve said it could use")
	fmt.Println("them; the churner is walled off at one way and loses nothing,")
	fmt.Println("because a never-repeating key stream cannot hit no matter its share.")
}
