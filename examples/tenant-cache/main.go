// Tenant-cache: an HTTP service in which N tenants share one
// cpacache.Cache, each with a way quota enforced through the paper's
// replacement masks, and the full lifecycle subsystem on: per-entry TTLs
// with a background sweeper, byte-cost accounting with per-tenant
// budgets, a background auto-rebalance ticker that moves ways to
// whichever tenant's observed hit curves can use them — no admin call
// required — and online policy auto-selection: each tenant's
// replacement policy is scored against the alternatives in a shadow
// directory and switched at rebalance boundaries when another candidate
// provably serves its traffic better.
//
// Run the demo workload (no network needed):
//
//	go run ./examples/tenant-cache -demo
//
// Or serve:
//
//	go run ./examples/tenant-cache -listen :8080
//	curl 'localhost:8080/get?tenant=0&key=user:17'
//	curl -X PUT 'localhost:8080/set?tenant=0&key=user:17&value=alice'
//	curl -X PUT 'localhost:8080/set?tenant=0&key=tmp:1&value=x&ttl=5s'
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/metrics'
//	curl -X POST 'localhost:8080/rebalance'   # manual override; the ticker does this on its own
//
// The demo drives a cache-hungry tenant (a wide key loop), a medium
// service and a churning log-ingest tenant (never-repeating keys, every
// entry TTL'd) against even initial quotas, prints each tenant's hit
// rate, keeps the traffic running until the background ticker has
// repartitioned from the observed curves — there is no Rebalance call in
// the demo — and prints the shifted hit rates: the hungry tenant's rate
// rises because MinMisses hands it the ways the churner provably cannot
// use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/pkg/cpacache"
	"repro/pkg/plru"
)

const tenants = 3

// cacheCost charges each entry its string payload plus a fixed slot
// overhead, the usual approximation for an in-process string cache.
func cacheCost(k, v string) uint64 { return uint64(len(k) + len(v) + 48) }

func newCache(auto time.Duration, sink cpacache.MetricsSink) (*cpacache.Cache[string, string], error) {
	return cpacache.New[string, string](
		cpacache.WithShards(4),
		cpacache.WithSets(64),
		cpacache.WithWays(16),
		cpacache.WithPolicy(plru.LRU),
		// Score LRU, AWRP and ARC per tenant in a shadow directory and
		// switch at rebalance boundaries; the churner's never-repeating
		// stream and the scanner's loop reward different policies.
		cpacache.WithPolicyAutoSelect(plru.AWRP, plru.ARC),
		cpacache.WithPartitions(tenants),
		cpacache.WithProfileSampling(1),
		cpacache.WithCost(cacheCost),
		cpacache.WithTTLSweep(50*time.Millisecond),
		cpacache.WithAutoRebalance(auto),
		// Demand at least a modest profiled window and a 2% predicted
		// gain before the ticker thrashes the masks.
		cpacache.WithRebalanceHysteresis(0.02, 256),
		cpacache.WithMetricsSink(sink),
	)
}

func main() {
	var (
		listen = flag.String("listen", "", "address to serve HTTP on (e.g. :8080)")
		demo   = flag.Bool("demo", false, "run the synthetic 3-tenant workload and exit")
		auto   = flag.Duration("auto", 2*time.Second, "auto-rebalance interval (0 disables the ticker; the demo defaults to a snappier 150ms)")
	)
	flag.Parse()
	// The demo's whole point is ticker-driven rebalancing, so its default
	// interval is short; an explicit -auto still wins in either mode.
	autoSet := false
	flag.Visit(func(f *flag.Flag) { autoSet = autoSet || f.Name == "auto" })

	switch {
	case *demo:
		interval := *auto
		if !autoSet {
			interval = 150 * time.Millisecond
		}
		if interval <= 0 {
			log.Fatal("the demo needs the auto-rebalance ticker; pass -auto > 0")
		}
		runDemo(interval)
	case *listen != "":
		c, err := newCache(*auto, cpacache.MetricsSink{
			Rebalance: func(e cpacache.RebalanceEvent) {
				if e.Applied {
					log.Printf("rebalance: %v -> %v (auto=%v, %d samples)", e.Old, e.New, e.Auto, e.SampledAccesses)
				}
			},
			PolicySwitch: func(e cpacache.PolicySwitchEvent) {
				log.Printf("policy switch: tenant %d %v -> %v (%d window accesses)", e.Tenant, e.From, e.To, e.WindowAccesses)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		log.Printf("tenant-cache serving on %s (%d tenants, %d ways, auto-rebalance %v)",
			*listen, tenants, c.Ways(), *auto)
		log.Fatal(http.ListenAndServe(*listen, newMux(c)))
	default:
		fmt.Println("nothing to do: pass -demo or -listen :8080 (see -h)")
	}
}

// newMux wires the cache into a small JSON-over-HTTP API. Every data
// endpoint takes a tenant id so the server can enforce per-tenant quotas;
// a production deployment would derive the tenant from auth instead.
func newMux(c *cpacache.Cache[string, string]) *http.ServeMux {
	mux := http.NewServeMux()

	tenantOf := func(r *http.Request) (int, error) {
		t, err := strconv.Atoi(r.URL.Query().Get("tenant"))
		if err != nil || t < 0 || t >= tenants {
			return 0, fmt.Errorf("tenant must be in [0,%d)", tenants)
		}
		return t, nil
	}

	mux.HandleFunc("GET /get", func(w http.ResponseWriter, r *http.Request) {
		t, err := tenantOf(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, ok := c.GetTenant(t, r.URL.Query().Get("key"))
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		fmt.Fprintln(w, v)
	})

	mux.HandleFunc("PUT /set", func(w http.ResponseWriter, r *http.Request) {
		t, err := tenantOf(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := r.URL.Query()
		if ttlStr := q.Get("ttl"); ttlStr != "" {
			ttl, err := time.ParseDuration(ttlStr)
			if err != nil {
				http.Error(w, "bad ttl: "+err.Error(), http.StatusBadRequest)
				return
			}
			c.SetTenantTTL(t, q.Get("key"), q.Get("value"), ttl)
		} else {
			c.SetTenant(t, q.Get("key"), q.Get("value"))
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		type tenantReport struct {
			Quota       int     `json:"quota_ways"`
			Policy      string  `json:"policy"`
			Hits        uint64  `json:"hits"`
			Misses      uint64  `json:"misses"`
			Evictions   uint64  `json:"evictions"`
			Expirations uint64  `json:"expirations"`
			Bytes       uint64  `json:"bytes_resident"`
			HitRate     float64 `json:"hit_rate"`
		}
		quotas, stats, pols := c.Quotas(), c.Stats(), c.TenantPolicies()
		out := make([]tenantReport, tenants)
		for t := range out {
			out[t] = tenantReport{
				Quota: quotas[t], Policy: pols[t].String(),
				Hits: stats[t].Hits, Misses: stats[t].Misses,
				Evictions: stats[t].Evictions, Expirations: stats[t].Expirations,
				Bytes: stats[t].Bytes, HitRate: stats[t].HitRate(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Snapshot())
	})

	mux.HandleFunc("POST /rebalance", func(w http.ResponseWriter, r *http.Request) {
		quotas, err := c.Rebalance()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"quotas": quotas})
	})

	mux.HandleFunc("PUT /budgets", func(w http.ResponseWriter, r *http.Request) {
		var budgets []uint64
		if err := json.NewDecoder(r.Body).Decode(&budgets); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.SetBudgets(budgets); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	return mux
}

// tenantWorkload is one tenant's synthetic traffic. Looping tenants cycle
// over `keys` distinct keys — the classic worst case for an undersized LRU
// partition (hit rate falls off a cliff when the quota is below the loop
// length). A churning tenant writes `keys` never-repeating keys per round
// (log ingest): it gains nothing from cache space but keeps every set
// full, so without quotas its evictions shred its neighbors; its entries
// carry a TTL so the sweeper reclaims whatever replacement has not.
type tenantWorkload struct {
	name  string
	keys  int
	churn bool
}

var demoWorkloads = [tenants]tenantWorkload{
	// The scanner's loop (2000 keys ≈ 7.8 per set) thrashes inside its
	// even-split quota (6 of 16 ways) but fits the share MinMisses hands
	// it once the curves show the churner can't use cache at all.
	{name: "scanner (hungry)", keys: 2000},
	{name: "service (medium)", keys: 200},
	{name: "logger (churn)", keys: 500, churn: true},
}

// churnCounter makes the logger's keys unique across rounds and intervals.
var churnCounter int

// driveBatch is the per-round scratch drive reuses: each tenant's traffic
// goes through GetBatch, and only the keys that missed are re-inserted
// with SetBatch — one shard lock per shard per batch instead of one per
// key, which is how a high-throughput caller should feed cpacache.
var driveBatch struct {
	keys, vals, missK, missV []string
	oks                      []bool
}

// drive runs `rounds` passes of every tenant's traffic and returns each
// tenant's hit rate over the interval (stats deltas, not lifetime). The
// churner's re-inserts carry a short TTL.
func drive(c *cpacache.Cache[string, string], rounds int) [tenants]float64 {
	const batch = 128
	b := &driveBatch
	if cap(b.keys) < batch {
		b.keys = make([]string, 0, batch)
		b.vals = make([]string, batch)
		b.oks = make([]bool, batch)
		b.missK = make([]string, 0, batch)
		b.missV = make([]string, 0, batch)
	}
	flush := func(t int, churn bool) {
		if len(b.keys) == 0 {
			return
		}
		c.GetBatch(t, b.keys, b.vals, b.oks)
		b.missK, b.missV = b.missK[:0], b.missV[:0]
		for i, ok := range b.oks[:len(b.keys)] {
			if !ok {
				b.missK = append(b.missK, b.keys[i])
				b.missV = append(b.missV, b.keys[i])
			}
		}
		if churn {
			// Log entries are only read back briefly: a short TTL lets
			// the sweeper reclaim them instead of waiting for eviction.
			for i := range b.missK {
				c.SetTenantTTL(t, b.missK[i], b.missV[i], 300*time.Millisecond)
			}
		} else {
			c.SetBatch(t, b.missK, b.missV)
		}
		b.keys = b.keys[:0]
	}
	before := c.Stats()
	for r := 0; r < rounds; r++ {
		for t, wl := range demoWorkloads {
			for k := 0; k < wl.keys; k++ {
				var key string
				if wl.churn {
					churnCounter++
					key = fmt.Sprintf("t%d:%d", t, churnCounter)
				} else {
					key = fmt.Sprintf("t%d:%d", t, k)
				}
				b.keys = append(b.keys, key)
				if len(b.keys) == batch {
					flush(t, wl.churn)
				}
			}
			flush(t, wl.churn)
		}
	}
	after := c.Stats()
	var rates [tenants]float64
	for t := range rates {
		hits := after[t].Hits - before[t].Hits
		total := hits + after[t].Misses - before[t].Misses
		if total > 0 {
			rates[t] = float64(hits) / float64(total)
		}
	}
	return rates
}

func printRates(rates [tenants]float64) {
	for t, wl := range demoWorkloads {
		fmt.Printf("  %-18s %5d keys  hit rate %.3f\n", wl.name, wl.keys, rates[t])
	}
}

func runDemo(interval time.Duration) {
	// The ticker does all repartitioning in this demo. The sink prints
	// each applied decision.
	c, err := newCache(interval, cpacache.MetricsSink{
		Rebalance: func(e cpacache.RebalanceEvent) {
			if e.Applied {
				fmt.Printf("  [ticker] rebalanced %v -> %v (%d profiled accesses)\n",
					e.Old, e.New, e.SampledAccesses)
			}
		},
		PolicySwitch: func(e cpacache.PolicySwitchEvent) {
			fmt.Printf("  [ticker] tenant %d policy %v -> %v (shadow-scored over %d accesses)\n",
				e.Tenant, e.From, e.To, e.WindowAccesses)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	fmt.Printf("capacity %d entries = %d shards x %d sets x %d ways; %d tenants\n\n",
		c.Capacity(), c.Shards(), c.Sets(), c.Ways(), tenants)

	fmt.Println("== interval 1: even quotas", c.Quotas(), "==")
	printRates(drive(c, 30))

	fmt.Println("\n== keep driving; the background ticker repartitions on its own ==")
	deadline := time.Now().Add(30 * time.Second)
	for c.Snapshot().Rebalances == 0 && time.Now().Before(deadline) {
		drive(c, 2)
	}
	if c.Snapshot().Rebalances == 0 {
		log.Fatal("auto-rebalance never fired (is the ticker disabled?)")
	}

	fmt.Println("\n== interval 2: ticker-chosen quotas", c.Quotas(), "==")
	printRates(drive(c, 30))

	// Give the sweeper a beat to reclaim the logger's TTL'd entries that
	// nothing will ever touch again.
	sweepWait := time.Now().Add(5 * time.Second)
	for c.Snapshot().SweepExpired == 0 && time.Now().Before(sweepWait) {
		time.Sleep(50 * time.Millisecond)
	}
	snap := c.Snapshot()
	fmt.Printf("\nlifecycle: %d auto/manual rebalances applied, %d held back by hysteresis,\n",
		snap.Rebalances, snap.RebalancesSkipped)
	var expir uint64
	for _, ts := range snap.Tenants {
		expir += ts.Expirations
	}
	fmt.Printf("%d TTL'd log entries reclaimed (%d by the background sweeper), %d bytes resident\n",
		expir, snap.SweepExpired, snap.Tenants[0].Bytes+snap.Tenants[1].Bytes+snap.Tenants[2].Bytes)
	fmt.Printf("per-tenant policies after %d shadow-scored switch(es): %v\n",
		snap.PolicySwitches, snap.Policies)
	fmt.Println("\nways moved toward the tenant whose miss curve said it could use")
	fmt.Println("them — without any Rebalance call; the churner is walled off at one")
	fmt.Println("way and loses nothing, because a never-repeating key stream cannot")
	fmt.Println("hit no matter its share, and its TTL'd entries expire on their own.")
}
