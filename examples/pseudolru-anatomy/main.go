// pseudolru-anatomy walks through the paper's Figures 2–5 with live data
// structures: the LRU stack + SDH construction (Fig. 2), NRU used-bit
// profiling (Fig. 3), the BT tree with its ID-bit decoder, the estimator
// and its aliasing limitation (Fig. 4), and the up/down enforcement truth
// table (Fig. 5).
//
//	go run ./examples/pseudolru-anatomy
package main

import (
	"fmt"

	"repro/pkg/cpapart"
	"repro/pkg/plru"
)

func main() {
	figure2()
	figure3()
	figure4()
	figure5()
}

// figure2 reproduces the CDD example: a 4-way set holding {A,B,C,D} with
// A the MRU; after accesses C, D the second access to D hits at stack
// distance 1 and register r1 is incremented.
func figure2() {
	fmt.Println("Figure 2: LRU stack and SDH construction")
	p := plru.NewLRUPolicy(1, 4)
	names := []string{"A", "B", "C", "D"}
	// Establish A MRU ... D LRU.
	for w := 3; w >= 0; w-- {
		p.Touch(0, w, 0)
	}
	show := func() {
		order := make([]string, 4)
		for w := 0; w < 4; w++ {
			order[p.Dist(0, w)-1] = names[w]
		}
		fmt.Printf("  stack (MRU->LRU): %v\n", order)
	}
	show()
	fmt.Println("  access C, then D:")
	p.Touch(0, 2, 0)
	p.Touch(0, 3, 0)
	show()
	fmt.Printf("  next access to D sees stack distance %d -> increment r%d\n",
		p.Dist(0, 3), p.Dist(0, 3))
	fmt.Println("  with 2 ways assigned, predicted misses = r3 + r4 + r5 (tail of the SDH)")
	fmt.Println()
}

// figure3 shows the two NRU estimator cases on a 4-way set.
func figure3() {
	fmt.Println("Figure 3: NRU used-bit profiling")
	p := plru.NewNRUPolicy(1, 4, 1)
	names := []string{"A", "B", "C", "D"}
	bits := func() string {
		s := ""
		for w := 0; w < 4; w++ {
			if p.Used(0, w) {
				s += names[w] + "=1 "
			} else {
				s += names[w] + "=0 "
			}
		}
		return s
	}
	fmt.Println("  (a) access C then D:", "initial bits:", bits())
	p.Touch(0, 2, 0)
	p.Touch(0, 3, 0)
	fmt.Println("      after C, D:     ", bits())
	u := p.UsedCount(0)
	fmt.Printf("      re-access D: used bit already 1, U=%d -> estimated distance in [1,%d]; eSDH assumes ceil(S*U)\n", u, u)

	q := plru.NewNRUPolicy(1, 4, 1)
	q.Touch(0, 0, 0)
	q.Touch(0, 1, 0)
	fmt.Println("  (b) access A then B: bits:", func() string {
		s := ""
		for w := 0; w < 4; w++ {
			if q.Used(0, w) {
				s += names[w] + "=1 "
			} else {
				s += names[w] + "=0 "
			}
		}
		return s
	}())
	fmt.Printf("      access C: used bit 0, U=2 -> distance in [3,4]; paper performs no eSDH update\n")
	fmt.Println()
}

// figure4 demonstrates the BT tree, the ID-bit decoder, the estimator
// arithmetic, and the aliasing limitation.
func figure4() {
	fmt.Println("Figure 4: BT scheme, decoder, estimator, limitation")
	p := plru.NewBTPolicy(1, 4)
	for w := 0; w < 4; w++ {
		fmt.Printf("  way %d: ID bits %02b (decoder: the way's binary digits)\n",
			w, p.IDBits(w))
	}
	fmt.Println("  touch way 1, then way 2:")
	p.Touch(0, 1, 0)
	p.Touch(0, 2, 0)
	v := p.Victim(0, 0, plru.Full(4))
	fmt.Printf("  victim walk lands on way %d (estimated stack position %d = A)\n",
		v, p.EstStackPos(0, v))
	for w := 0; w < 4; w++ {
		fmt.Printf("  way %d: path bits %02b XOR ID %02b -> estimate A - %d = %d\n",
			w, p.PathBits(0, w), p.IDBits(w),
			p.PathBits(0, w)^p.IDBits(w), p.EstStackPos(0, w))
	}
	fmt.Println("  limitation: the A-1 tree bits cannot order all A lines —")
	fmt.Println("  different true LRU stacks share identical tree bits, so the")
	fmt.Println("  profiling logic estimates (rather than determines) positions.")
	fmt.Println()
}

// figure5 prints the up/down truth table and shows buddy-partition
// enforcement steering the victim walk.
func figure5() {
	fmt.Println("Figure 5: up/down force vectors (truth table per tree level)")
	fmt.Println("  up down | effective bit")
	fmt.Println("   0   0  | stored BT bit")
	fmt.Println("   1   0  | forced to upper subtree")
	fmt.Println("   0   1  | forced to lower subtree")
	fmt.Println("   1   1  | forbidden")

	p := plru.NewBTPolicy(1, 8)
	blocks, err := cpapart.BuddyLayout([]int{4, 2, 2}, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println("\n  buddy layout for shares [4 2 2] of an 8-way set:")
	for core, b := range blocks {
		up, down := cpapart.ForceVectors(b, 8)
		v := p.VictimForced(0, up, down)
		fmt.Printf("  core %d: ways %v, up=%v down=%v -> victim way %d\n",
			core, b.Mask(), fmtBits(up), fmtBits(down), v)
	}
}

func fmtBits(bs []bool) string {
	s := ""
	for _, b := range bs {
		if b {
			s += "1"
		} else {
			s += "0"
		}
	}
	return s
}
