// policy-compare runs the same workload under every replacement policy,
// partitioned and not, and prints a side-by-side comparison — a miniature
// of the paper's Figures 6 and 7 on one workload.
//
//	go run ./examples/policy-compare [workload]
//
// The optional argument is a Table II workload name (default 2T_04,
// vpr + art: a partitioning-sensitive pair).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments/sched"
	"repro/internal/textplot"
	"repro/internal/workload"
	"repro/pkg/plru"
)

func main() {
	name := "2T_04"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := workload.Lookup(name)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		label   string
		policy  plru.Kind
		acronym string // empty = non-partitioned
	}
	variants := []variant{
		{"LRU (no partitioning)", plru.LRU, ""},
		{"NRU (no partitioning)", plru.NRU, ""},
		{"BT (no partitioning)", plru.BT, ""},
		{"Random (no partitioning)", plru.Random, ""},
		{"C-L  (counters + LRU)", plru.LRU, "C-L"},
		{"M-L  (masks + LRU)", plru.LRU, "M-L"},
		{"M-0.75N (masks + NRU)", plru.NRU, "M-0.75N"},
		{"M-BT (up/down + BT)", plru.BT, "M-BT"},
	}

	// The variants are independent simulations: run them through a
	// bounded pool (the experiment engine's substrate) and assemble the
	// table in display order.
	results := make([]cmp.Results, len(variants))
	_ = sched.ForEach(context.Background(), sched.NewPool(0), len(variants), func(i int) error {
		results[i] = run(w, variants[i].policy, variants[i].acronym)
		return nil
	})

	labels := make([]string, 0, len(variants))
	values := make([]float64, 0, len(variants))
	rows := make([][]string, 0, len(variants))
	for i, v := range variants {
		res := results[i]
		labels = append(labels, v.label)
		values = append(values, res.Throughput())
		missRate := float64(res.L2Misses) / float64(res.L2Accesses) * 100
		rows = append(rows, []string{
			v.label,
			fmt.Sprintf("%.3f", res.Throughput()),
			fmt.Sprintf("%d", res.L2Misses),
			fmt.Sprintf("%.1f%%", missRate),
			fmt.Sprintf("%d", res.Repartitions),
		})
	}

	fmt.Printf("workload %s: %v\n\n", w.Name, w.Benchmarks)
	fmt.Print(textplot.Table(
		[]string{"configuration", "throughput", "L2 misses", "L2 miss rate", "repartitions"}, rows))
	fmt.Println("\nthroughput:")
	lo := values[0]
	hi := values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Print(textplot.Bars(labels, values, lo*0.95, hi*1.02, 40))
}

func run(w workload.Workload, kind plru.Kind, acronym string) cmp.Results {
	cfg := cmp.Config{
		Workload: w,
		L2: cache.Config{
			Name: "L2", SizeBytes: 1 << 20, LineBytes: 128, Ways: 16,
			Policy: kind, Cores: w.Threads(), Seed: 1,
		},
		Params:   cpu.DefaultParams(),
		L1:       cpu.DefaultL1Config(128),
		MaxInsts: 800_000,
	}
	if acronym != "" {
		cpaCfg, err := core.ParseAcronym(acronym)
		if err != nil {
			log.Fatal(err)
		}
		cpaCfg.Interval = 100_000
		cpaCfg.SampleRate = 16
		cfg.CPA = &cpaCfg
	}
	sys, err := cmp.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run()
}
